module Cpu = Siesta_platform.Cpu
module Spec = Siesta_platform.Spec
module Network = Siesta_platform.Network
module Mpi_impl = Siesta_platform.Mpi_impl
module Papi = Siesta_perf.Papi
module Counters = Siesta_perf.Counters
module Kernel = Siesta_perf.Kernel
module Rng = Siesta_util.Rng
module Metrics = Siesta_obs.Metrics

exception Deadlock of string
exception Collective_mismatch of string

type comm = { c_id : int; c_ranks : int array; c_my : int }

type request = {
  r_id : int;
  mutable r_done : float option;
  mutable r_waiter : int option;  (* world rank blocked on this request *)
}

type message = {
  m_src : int;  (* world rank *)
  m_dst : int;  (* world rank *)
  m_tag : int;
  m_comm : int;
  m_bytes : int;
  m_avail : float;  (* receiver-side availability (eager only) *)
  m_rdv : bool;
  m_send_ready : float;
  m_sreq : request option;  (* completed at pairing time for rendezvous *)
}

type posted = {
  p_src : int;  (* world rank or Call.any_source *)
  p_tag : int;
  p_comm : int;
  p_post : float;
  p_req : request;
}

type status = Fresh | Runnable | Running | Blocked | Done

type proc = {
  rank : int;
  papi : Papi.t;
  mutable clock : float;
  mutable status : status;
  mutable k : (unit, unit) Effect.Deep.continuation option;
  mutable resume_clock : float;  (* target clock adopted after a collective resume *)
  mutable split_result : comm option;
  mutable file_result : int;
  mutable blocked_on : string;
  coll_seq : (int, int) Hashtbl.t;  (* comm id -> next collective index *)
}

(* Payload a rank contributes to a pending collective.  [cpl_clock] is the
   contributor's clock at arrival (after call overhead), kept so observers
   can identify the last arriver of a completed collective. *)
type coll_payload = {
  cpl_rank : int;
  cpl_bytes : int;
  cpl_color : int;
  cpl_key : int;
  cpl_clock : float;
}

type coll_pending = {
  cp_kind : string;
  mutable cp_arrived : coll_payload list;  (* newest first *)
  mutable cp_maxclock : float;
  mutable cp_waiters : int list;  (* world ranks suspended on this collective *)
  mutable cp_requests : request list;  (* non-blocking joiners' requests *)
}

type hook = {
  on_event : rank:int -> papi:Papi.t -> call:Call.t -> unit;
  per_event_overhead : float;
}

(* Passive simulated-time observer (see engine.mli for the contract). *)
type observer = {
  on_call : rank:int -> call:Call.t -> clock:float -> unit;
  on_compute : rank:int -> t0:float -> t1:float -> unit;
  on_p2p_match :
    src:int ->
    dst:int ->
    rendezvous:bool ->
    send_ready:float ->
    post:float ->
    completion:float ->
    bytes:int ->
    unit;
  on_coll_done :
    kind:string ->
    ranks:int array ->
    last_rank:int ->
    last_arrival:float ->
    finish:float ->
    unit;
}

type engine = {
  platform : Spec.t;
  impl : Mpi_impl.t;
  nranks : int;
  procs : proc array;
  runq : int Queue.t;
  unexpected : (int * int, message Queue.t) Hashtbl.t;  (* (comm, dst world rank) *)
  posted : (int * int, posted Queue.t) Hashtbl.t;  (* (comm, owner world rank) *)
  wildcard_posted : (int * int, unit) Hashtbl.t;
      (* (comm, owner) keys on which the owner posted at least one
         ANY_SOURCE/ANY_TAG recv — finalize uses this to split truly
         orphaned leftovers from wildcard-prone ones *)
  comm_ranks : (int, int array) Hashtbl.t;  (* comm id -> world ranks *)
  pending_colls : (int * int, coll_pending) Hashtbl.t;
      (* (comm id, collective index) -> in-flight collective; the index is
         each rank's count of collectives initiated on that communicator,
         so several non-blocking collectives can be in flight in order *)
  hook : hook option;
  observer : observer option;
  mutable next_req : int;
  mutable next_comm : int;
  mutable next_file : int;
  mutable total_calls : int;
  (* Per-call-kind (count, bytes) accumulators, indexed by
     [Call.index].  The hot [emit] path pays a jump-table match plus
     two plain int adds — no hashing, no atomics; the scheduler is
     single-domain, so unsynchronized slots are safe.  The totals are
     flushed into the (atomic, registry-backed) [Metrics] counters once
     at the end of [run].  The collective latency histogram is likewise
     resolved once per run, not per collective, keeping the registry
     mutex off the event path. *)
  call_counts : int array;
  call_bytes : int array;
  mutable coll_latency : Metrics.histogram option;
}

type file = { f_id : int; f_comm : comm }

type ctx = { eng : engine; proc : proc; world : comm }

type result = {
  elapsed : float;
  per_rank_elapsed : float array;
  per_rank_counters : Counters.t array;
  total_calls : int;
  unreceived_messages : int;
  unreceived_wildcard_prone : int;
}

type _ Effect.t += Suspend : unit Effect.t

(* ------------------------------------------------------------------ *)
(* Cost model helpers                                                   *)

let call_overhead eng = eng.impl.Mpi_impl.call_overhead_s

let wire_time eng ~src ~dst ~bytes =
  let net = eng.platform.Spec.network in
  let same = Spec.same_node eng.platform src dst in
  let lat = if same then net.Network.intra_latency_s else net.Network.inter_latency_s in
  let bw = if same then net.Network.intra_bandwidth_bps else net.Network.inter_bandwidth_bps in
  (lat *. eng.impl.Mpi_impl.latency_factor)
  +. (float_of_int bytes /. (bw *. eng.impl.Mpi_impl.bandwidth_factor))

let log2_ceil p =
  let rec go acc v = if v >= p then acc else go (acc + 1) (v * 2) in
  if p <= 1 then 0 else go 0 1

(* Per-collective analytic costs.  [bytes] is the max per-rank payload. *)
let coll_cost eng ranks kind bytes =
  let p = Array.length ranks in
  if p <= 1 then 0.0
  else begin
    let net = eng.platform.Spec.network in
    let spans_nodes =
      let node0 = Spec.node_of_rank eng.platform ranks.(0) in
      Array.exists (fun r -> Spec.node_of_rank eng.platform r <> node0) ranks
    in
    let lat =
      (if spans_nodes then net.Network.inter_latency_s else net.Network.intra_latency_s)
      *. eng.impl.Mpi_impl.latency_factor
    in
    let bw =
      (if spans_nodes then net.Network.inter_bandwidth_bps else net.Network.intra_bandwidth_bps)
      *. eng.impl.Mpi_impl.bandwidth_factor
    in
    let n = float_of_int bytes in
    let logp = float_of_int (log2_ceil p) in
    let pf = float_of_int p in
    let i = eng.impl in
    match kind with
    | "barrier" -> i.Mpi_impl.barrier_factor *. logp *. lat
    | "bcast" -> i.Mpi_impl.bcast_factor *. logp *. (lat +. (n /. bw))
    | "reduce" -> i.Mpi_impl.reduce_factor *. logp *. (lat +. (1.15 *. n /. bw))
    | "allreduce" -> i.Mpi_impl.allreduce_factor *. logp *. (lat +. (2.2 *. n /. bw))
    | "alltoall" -> i.Mpi_impl.alltoall_factor *. (pf -. 1.0) *. (lat +. (n /. bw))
    | "alltoallv" ->
        (* here [bytes] already aggregates a rank's total send volume *)
        i.Mpi_impl.alltoall_factor *. (((pf -. 1.0) *. lat) +. (n /. bw))
    | "allgather" -> i.Mpi_impl.allgather_factor *. (pf -. 1.0) *. (lat +. (n /. bw))
    | "gather" | "scatter" -> (logp *. lat) +. ((pf -. 1.0) *. n /. bw)
    | "scan" | "exscan" -> i.Mpi_impl.reduce_factor *. logp *. (lat +. (1.15 *. n /. bw))
    | "reduce_scatter" ->
        i.Mpi_impl.allreduce_factor *. (((pf -. 1.0) *. lat /. pf *. logp) +. (logp *. (lat +. (1.6 *. n /. bw))))
    | "split" | "dup" -> i.Mpi_impl.barrier_factor *. logp *. lat *. 1.5
    | "file_open" ->
        eng.platform.Spec.storage.Spec.open_latency_s +. (i.Mpi_impl.barrier_factor *. logp *. lat)
    | "file_close" ->
        (0.5 *. eng.platform.Spec.storage.Spec.open_latency_s)
        +. (i.Mpi_impl.barrier_factor *. logp *. lat)
    | "file_write_all" ->
        let st = eng.platform.Spec.storage in
        st.Spec.per_call_latency_s +. (logp *. lat)
        +. (n *. pf /. st.Spec.write_bandwidth_bps)
    | "file_read_all" ->
        let st = eng.platform.Spec.storage in
        st.Spec.per_call_latency_s +. (logp *. lat)
        +. (n *. pf /. st.Spec.read_bandwidth_bps)
    | other -> invalid_arg ("Engine.coll_cost: unknown kind " ^ other)
  end

let estimate_p2p_seconds ~platform ~impl ~same_node ~bytes =
  let net = platform.Spec.network in
  let lat = if same_node then net.Network.intra_latency_s else net.Network.inter_latency_s in
  let bw = if same_node then net.Network.intra_bandwidth_bps else net.Network.inter_bandwidth_bps in
  let wire =
    (lat *. impl.Mpi_impl.latency_factor)
    +. (float_of_int bytes /. (bw *. impl.Mpi_impl.bandwidth_factor))
  in
  let rdv = if bytes > impl.Mpi_impl.eager_threshold_bytes then impl.Mpi_impl.rendezvous_extra_s else 0.0 in
  impl.Mpi_impl.call_overhead_s +. wire +. rdv

(* ------------------------------------------------------------------ *)
(* Scheduling primitives                                                *)

let wake eng rank =
  let p = eng.procs.(rank) in
  match p.status with
  | Blocked ->
      p.status <- Runnable;
      Queue.push rank eng.runq
  | Fresh | Runnable | Running | Done -> ()

let suspend ctx ~on =
  ctx.proc.blocked_on <- on;
  Effect.perform Suspend

(* Complete a request and wake its waiter, if any. *)
let complete_request eng req time =
  req.r_done <- Some time;
  match req.r_waiter with
  | Some rk ->
      req.r_waiter <- None;
      wake eng rk
  | None -> ()

let fresh_request eng =
  let id = eng.next_req in
  eng.next_req <- id + 1;
  { r_id = id; r_done = None; r_waiter = None }

(* ------------------------------------------------------------------ *)
(* Queues                                                               *)

let queue_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add tbl key q;
      q

let queue_find_remove q pred =
  (* First element satisfying [pred], preserving the order of the rest. *)
  let found = ref None in
  let rest = Queue.create () in
  Queue.iter
    (fun x -> if !found = None && pred x then found := Some x else Queue.push x rest)
    q;
  Queue.clear q;
  Queue.transfer rest q;
  !found

(* ------------------------------------------------------------------ *)
(* Point-to-point pairing                                               *)

let pair eng (msg : message) (post : posted) =
  let completion =
    if msg.m_rdv then
      max msg.m_send_ready post.p_post
      +. eng.impl.Mpi_impl.rendezvous_extra_s
      +. wire_time eng ~src:msg.m_src ~dst:msg.m_dst ~bytes:msg.m_bytes
    else max post.p_post msg.m_avail
  in
  (match eng.observer with
  | None -> ()
  | Some o ->
      o.on_p2p_match ~src:msg.m_src ~dst:msg.m_dst ~rendezvous:msg.m_rdv
        ~send_ready:msg.m_send_ready ~post:post.p_post ~completion ~bytes:msg.m_bytes);
  complete_request eng post.p_req completion;
  match msg.m_sreq with
  | Some sreq when msg.m_rdv -> complete_request eng sreq completion
  | Some _ | None -> ()

let matches_post (post : posted) (msg : message) =
  (post.p_src = Call.any_source || post.p_src = msg.m_src)
  && (post.p_tag = Call.any_tag || post.p_tag = msg.m_tag)

let deliver eng msg =
  let posted_q = queue_of eng.posted (msg.m_comm, msg.m_dst) in
  match queue_find_remove posted_q (fun post -> matches_post post msg) with
  | Some post -> pair eng msg post
  | None -> Queue.push msg (queue_of eng.unexpected (msg.m_comm, msg.m_dst))

let post_recv eng ~owner (post : posted) =
  if post.p_src = Call.any_source || post.p_tag = Call.any_tag then
    Hashtbl.replace eng.wildcard_posted (post.p_comm, owner) ();
  let unexpected_q = queue_of eng.unexpected (post.p_comm, owner) in
  match queue_find_remove unexpected_q (fun msg -> matches_post post msg) with
  | Some msg -> pair eng msg post
  | None -> Queue.push post (queue_of eng.posted (post.p_comm, owner))

(* ------------------------------------------------------------------ *)
(* ctx accessors                                                        *)

let rank ctx = ctx.proc.rank
let size ctx = ctx.eng.nranks
let comm_world ctx = ctx.world
let comm_rank _ctx comm = comm.c_my
let comm_size _ctx comm = Array.length comm.c_ranks
let comm_id _ctx comm = comm.c_id
let wtime ctx = ctx.proc.clock

let count_call eng call =
  (* Per-MPI-call-type count and volume accumulation for the
     "mpi.calls.<name>" / "mpi.bytes.<name>" counters.  Only reached
     when the metrics registry is enabled; off, the caller's branch is
     the entire cost.  On, the cost is two plain int adds — the
     registry-backed counters are only touched by the end-of-run flush
     in [run]. *)
  let i = Call.index call in
  eng.call_counts.(i) <- eng.call_counts.(i) + 1;
  eng.call_bytes.(i) <- eng.call_bytes.(i) + Call.payload_bytes call

(* Tell the observer (if any) that a call begins now, on this rank's
   current clock.  Split out of [emit] because comm_split / comm_dup /
   file_open only learn the resolved ids *after* their collective
   completes: they notify at entry with a placeholder and later emit to
   the recorder hook with [~observe:false]. *)
let notify_call ctx call =
  match ctx.eng.observer with
  | None -> ()
  | Some o -> o.on_call ~rank:ctx.proc.rank ~call ~clock:ctx.proc.clock

let emit ?(observe = true) ctx call =
  if observe then notify_call ctx call;
  ctx.eng.total_calls <- ctx.eng.total_calls + 1;
  if Metrics.enabled () then count_call ctx.eng call;
  match ctx.eng.hook with
  | None -> ()
  | Some h ->
      h.on_event ~rank:ctx.proc.rank ~papi:ctx.proc.papi ~call;
      ctx.proc.clock <- ctx.proc.clock +. h.per_event_overhead

let notify_compute ctx t0 =
  match ctx.eng.observer with
  | Some o when ctx.proc.clock > t0 -> o.on_compute ~rank:ctx.proc.rank ~t0 ~t1:ctx.proc.clock
  | Some _ | None -> ()

let compute_work ctx work =
  let t0 = ctx.proc.clock in
  let before = (Papi.totals ctx.proc.papi).Counters.cyc in
  Papi.accumulate ctx.proc.papi work;
  let after = (Papi.totals ctx.proc.papi).Counters.cyc in
  ctx.proc.clock <-
    ctx.proc.clock +. Cpu.seconds_of_cycles ctx.eng.platform.Spec.cpu (after -. before);
  notify_compute ctx t0

let compute ctx kernel = compute_work ctx (Kernel.to_work kernel)

let sleep ctx dt =
  let t0 = ctx.proc.clock in
  ctx.proc.clock <- t0 +. max 0.0 dt;
  notify_compute ctx t0

(* ------------------------------------------------------------------ *)
(* Point-to-point operations                                            *)

let wait_request ctx req =
  match req.r_done with
  | Some t -> ctx.proc.clock <- max ctx.proc.clock t
  | None -> begin
      req.r_waiter <- Some ctx.proc.rank;
      suspend ctx ~on:(Printf.sprintf "request %d" req.r_id);
      match req.r_done with
      | Some t -> ctx.proc.clock <- max ctx.proc.clock t
      | None -> assert false
    end

let send_internal ctx ~comm ~dest ~tag ~dt ~count =
  let eng = ctx.eng in
  let proc = ctx.proc in
  proc.clock <- proc.clock +. call_overhead eng;
  let bytes = Datatype.bytes dt ~count in
  let dst_world = comm.c_ranks.(dest) in
  if bytes <= eng.impl.Mpi_impl.eager_threshold_bytes then begin
    let avail = proc.clock +. wire_time eng ~src:proc.rank ~dst:dst_world ~bytes in
    deliver eng
      {
        m_src = proc.rank;
        m_dst = dst_world;
        m_tag = tag;
        m_comm = comm.c_id;
        m_bytes = bytes;
        m_avail = avail;
        m_rdv = false;
        m_send_ready = proc.clock;
        m_sreq = None;
      }
  end
  else begin
    let sreq = fresh_request eng in
    deliver eng
      {
        m_src = proc.rank;
        m_dst = dst_world;
        m_tag = tag;
        m_comm = comm.c_id;
        m_bytes = bytes;
        m_avail = infinity;
        m_rdv = true;
        m_send_ready = proc.clock;
        m_sreq = Some sreq;
      };
    wait_request ctx sreq
  end

let isend_internal ctx ~comm ~dest ~tag ~dt ~count =
  let eng = ctx.eng in
  let proc = ctx.proc in
  proc.clock <- proc.clock +. call_overhead eng;
  let bytes = Datatype.bytes dt ~count in
  let dst_world = comm.c_ranks.(dest) in
  let req = fresh_request eng in
  if bytes <= eng.impl.Mpi_impl.eager_threshold_bytes then begin
    req.r_done <- Some proc.clock;
    let avail = proc.clock +. wire_time eng ~src:proc.rank ~dst:dst_world ~bytes in
    deliver eng
      {
        m_src = proc.rank;
        m_dst = dst_world;
        m_tag = tag;
        m_comm = comm.c_id;
        m_bytes = bytes;
        m_avail = avail;
        m_rdv = false;
        m_send_ready = proc.clock;
        m_sreq = Some req;
      }
  end
  else
    deliver eng
      {
        m_src = proc.rank;
        m_dst = dst_world;
        m_tag = tag;
        m_comm = comm.c_id;
        m_bytes = bytes;
        m_avail = infinity;
        m_rdv = true;
        m_send_ready = proc.clock;
        m_sreq = Some req;
      };
  req

let irecv_internal ctx ~comm ~src ~tag ~dt ~count =
  let eng = ctx.eng in
  let proc = ctx.proc in
  proc.clock <- proc.clock +. call_overhead eng;
  let req = fresh_request eng in
  let src_world = if src = Call.any_source then Call.any_source else comm.c_ranks.(src) in
  post_recv eng ~owner:proc.rank
    {
      p_src = src_world;
      p_tag = tag;
      p_comm = comm.c_id;
      p_post = proc.clock;
      p_req = req;
    };
  ignore (Datatype.bytes dt ~count);
  req

let recv_internal ctx ~comm ~src ~tag ~dt ~count =
  let req = irecv_internal ctx ~comm ~src ~tag ~dt ~count in
  (* the overhead was charged by irecv_internal; just wait *)
  wait_request ctx req

let send ctx ~dest ~tag ~dt ~count =
  emit ctx (Call.Send { peer = dest; tag; dt; count });
  send_internal ctx ~comm:ctx.world ~dest ~tag ~dt ~count

let recv ctx ~src ~tag ~dt ~count =
  emit ctx (Call.Recv { peer = src; tag; dt; count });
  recv_internal ctx ~comm:ctx.world ~src ~tag ~dt ~count

let isend ctx ~dest ~tag ~dt ~count =
  let call_req = ctx.eng.next_req in
  emit ctx (Call.Isend ({ peer = dest; tag; dt; count }, call_req));
  isend_internal ctx ~comm:ctx.world ~dest ~tag ~dt ~count

let irecv ctx ~src ~tag ~dt ~count =
  let call_req = ctx.eng.next_req in
  emit ctx (Call.Irecv ({ peer = src; tag; dt; count }, call_req));
  irecv_internal ctx ~comm:ctx.world ~src ~tag ~dt ~count

let wait ctx req =
  emit ctx (Call.Wait req.r_id);
  ctx.proc.clock <- ctx.proc.clock +. call_overhead ctx.eng;
  wait_request ctx req

let waitall ctx reqs =
  emit ctx (Call.Waitall (List.map (fun r -> r.r_id) reqs));
  ctx.proc.clock <- ctx.proc.clock +. call_overhead ctx.eng;
  List.iter (fun r -> wait_request ctx r) reqs

let sendrecv ctx ~dest ~send_tag ~src ~recv_tag ~dt ~send_count ~recv_count =
  emit ctx
    (Call.Sendrecv
       {
         send = { peer = dest; tag = send_tag; dt; count = send_count };
         recv = { peer = src; tag = recv_tag; dt; count = recv_count };
       });
  let rreq = irecv_internal ctx ~comm:ctx.world ~src ~tag:recv_tag ~dt ~count:recv_count in
  send_internal ctx ~comm:ctx.world ~dest ~tag:send_tag ~dt ~count:send_count;
  wait_request ctx rreq

(* ------------------------------------------------------------------ *)
(* Collectives                                                          *)

(* Join the in-flight collective on [comm]; returns [true] if this rank is
   the last to arrive.  [bytes] is this rank's payload contribution. *)
let coll_join ctx comm ~kind ~bytes ~color ~key =
  let eng = ctx.eng in
  let proc = ctx.proc in
  proc.clock <- proc.clock +. call_overhead eng;
  let seq = Option.value ~default:0 (Hashtbl.find_opt proc.coll_seq comm.c_id) in
  Hashtbl.replace proc.coll_seq comm.c_id (seq + 1);
  let cp_key = (comm.c_id, seq) in
  let cp =
    match Hashtbl.find_opt eng.pending_colls cp_key with
    | Some cp ->
        if cp.cp_kind <> kind then
          raise
            (Collective_mismatch
               (Printf.sprintf "comm %d, collective %d: rank %d calls %s while others call %s"
                  comm.c_id seq proc.rank kind cp.cp_kind));
        cp
    | None ->
        let cp =
          { cp_kind = kind; cp_arrived = []; cp_maxclock = 0.0; cp_waiters = []; cp_requests = [] }
        in
        Hashtbl.add eng.pending_colls cp_key cp;
        cp
  in
  cp.cp_arrived <-
    { cpl_rank = proc.rank; cpl_bytes = bytes; cpl_color = color; cpl_key = key;
      cpl_clock = proc.clock }
    :: cp.cp_arrived;
  cp.cp_maxclock <- max cp.cp_maxclock proc.clock;
  (cp, cp_key, List.length cp.cp_arrived = Array.length comm.c_ranks)

(* Close a complete collective: price it, resume suspended fibers, and
   complete non-blocking joiners' requests.  [advance_self] is false for a
   non-blocking last arriver, whose own clock must not jump to the finish
   time. *)
let coll_finish ?(advance_self = true) ctx comm cp cp_key ~kind =
  let eng = ctx.eng in
  let max_bytes = List.fold_left (fun acc a -> max acc a.cpl_bytes) 0 cp.cp_arrived in
  let finish = cp.cp_maxclock +. coll_cost eng comm.c_ranks kind max_bytes in
  (* simulated latency of the collective itself (last arrival -> finish),
     one log-scale histogram across all kinds *)
  (if Metrics.enabled () then
     let h =
       match eng.coll_latency with
       | Some h -> h
       | None ->
           let h = Metrics.histogram "mpi.collective.latency_s" in
           eng.coll_latency <- Some h;
           h
     in
     Metrics.observe h (finish -. cp.cp_maxclock));
  (match eng.observer with
  | None -> ()
  | Some o ->
      (* the last arriver is the payload whose clock equals cp_maxclock
         (bit-equal, since cp_maxclock is a running max of those clocks);
         ties break towards the lowest rank for determinism *)
      let last_rank =
        List.fold_left
          (fun acc a ->
            if a.cpl_clock = cp.cp_maxclock && (acc < 0 || a.cpl_rank < acc) then a.cpl_rank
            else acc)
          (-1) cp.cp_arrived
      in
      o.on_coll_done ~kind ~ranks:comm.c_ranks ~last_rank ~last_arrival:cp.cp_maxclock ~finish);
  Hashtbl.remove eng.pending_colls cp_key;
  List.iter
    (fun rk ->
      eng.procs.(rk).resume_clock <- finish;
      wake eng rk)
    cp.cp_waiters;
  List.iter (fun req -> complete_request eng req finish) cp.cp_requests;
  if advance_self then ctx.proc.clock <- max ctx.proc.clock finish

let coll_wait ctx cp =
  cp.cp_waiters <- ctx.proc.rank :: cp.cp_waiters;
  suspend ctx ~on:("collective " ^ cp.cp_kind);
  ctx.proc.clock <- max ctx.proc.clock ctx.proc.resume_clock

let simple_collective ctx comm ~kind ~bytes =
  let cp, cp_key, last = coll_join ctx comm ~kind ~bytes ~color:0 ~key:0 in
  if last then coll_finish ctx comm cp cp_key ~kind else coll_wait ctx cp

(* Non-blocking collective: join without suspending; the returned request
   completes when the last participant arrives. *)
let nonblocking_collective ctx comm ~kind ~bytes =
  let cp, cp_key, last = coll_join ctx comm ~kind ~bytes ~color:0 ~key:0 in
  let req = fresh_request ctx.eng in
  cp.cp_requests <- req :: cp.cp_requests;
  if last then coll_finish ~advance_self:false ctx comm cp cp_key ~kind;
  req

let barrier ctx comm =
  emit ctx (Call.Barrier { comm = comm.c_id });
  simple_collective ctx comm ~kind:"barrier" ~bytes:0

let bcast ctx comm ~root ~dt ~count =
  emit ctx (Call.Bcast { comm = comm.c_id; root; dt; count });
  simple_collective ctx comm ~kind:"bcast" ~bytes:(Datatype.bytes dt ~count)

let reduce ctx comm ~root ~dt ~count ~op =
  emit ctx (Call.Reduce { comm = comm.c_id; root; dt; count; op });
  simple_collective ctx comm ~kind:"reduce" ~bytes:(Datatype.bytes dt ~count)

let allreduce ctx comm ~dt ~count ~op =
  emit ctx (Call.Allreduce { comm = comm.c_id; dt; count; op });
  simple_collective ctx comm ~kind:"allreduce" ~bytes:(Datatype.bytes dt ~count)

let alltoall ctx comm ~dt ~count =
  emit ctx (Call.Alltoall { comm = comm.c_id; dt; count });
  simple_collective ctx comm ~kind:"alltoall" ~bytes:(Datatype.bytes dt ~count)

let alltoallv ctx comm ~dt ~send_counts =
  if Array.length send_counts <> Array.length comm.c_ranks then
    invalid_arg "Engine.alltoallv: send_counts size mismatch";
  emit ctx (Call.Alltoallv { comm = comm.c_id; dt; send_counts });
  let total = Array.fold_left ( + ) 0 send_counts in
  simple_collective ctx comm ~kind:"alltoallv" ~bytes:(Datatype.bytes dt ~count:total)

let allgather ctx comm ~dt ~count =
  emit ctx (Call.Allgather { comm = comm.c_id; dt; count });
  simple_collective ctx comm ~kind:"allgather" ~bytes:(Datatype.bytes dt ~count)

let gather ctx comm ~root ~dt ~count =
  emit ctx (Call.Gather { comm = comm.c_id; root; dt; count });
  simple_collective ctx comm ~kind:"gather" ~bytes:(Datatype.bytes dt ~count)

let scatter ctx comm ~root ~dt ~count =
  emit ctx (Call.Scatter { comm = comm.c_id; root; dt; count });
  simple_collective ctx comm ~kind:"scatter" ~bytes:(Datatype.bytes dt ~count)

let scan ctx comm ~dt ~count ~op =
  emit ctx (Call.Scan { comm = comm.c_id; dt; count; op });
  simple_collective ctx comm ~kind:"scan" ~bytes:(Datatype.bytes dt ~count)

let exscan ctx comm ~dt ~count ~op =
  emit ctx (Call.Exscan { comm = comm.c_id; dt; count; op });
  simple_collective ctx comm ~kind:"exscan" ~bytes:(Datatype.bytes dt ~count)

let reduce_scatter ctx comm ~dt ~count ~op =
  emit ctx (Call.Reduce_scatter { comm = comm.c_id; dt; count; op });
  simple_collective ctx comm ~kind:"reduce_scatter" ~bytes:(Datatype.bytes dt ~count)

(* comm_split: the last arriver groups participants by color, orders each
   group by (key, world rank), allocates one fresh communicator id per
   distinct color (in ascending color order, so ids agree across ranks),
   and deposits each participant's new communicator view. *)
let ibarrier ctx comm =
  let call_req = ctx.eng.next_req in
  emit ctx (Call.Ibarrier { comm = comm.c_id; req = call_req });
  nonblocking_collective ctx comm ~kind:"barrier" ~bytes:0

let ibcast ctx comm ~root ~dt ~count =
  let call_req = ctx.eng.next_req in
  emit ctx (Call.Ibcast { comm = comm.c_id; root; dt; count; req = call_req });
  nonblocking_collective ctx comm ~kind:"bcast" ~bytes:(Datatype.bytes dt ~count)

let iallreduce ctx comm ~dt ~count ~op =
  let call_req = ctx.eng.next_req in
  emit ctx (Call.Iallreduce { comm = comm.c_id; dt; count; op; req = call_req });
  nonblocking_collective ctx comm ~kind:"allreduce" ~bytes:(Datatype.bytes dt ~count)

let comm_split ctx comm ~color ~key =
  let eng = ctx.eng in
  (* The id the split will produce for this rank is not known before the
     collective completes; the trace records the engine id afterwards via
     the returned comm, so we emit with a placeholder resolved below.  The
     observer however must see the call at its *start* clock, before the
     collective wait — hence the placeholder notification here and the
     [~observe:false] emit after resolution. *)
  notify_call ctx (Call.Comm_split { comm = comm.c_id; color; key; newcomm = -1 });
  let cp, cp_key, last = coll_join ctx comm ~kind:"split" ~bytes:0 ~color ~key in
  if last then begin
    let arrivals = List.rev cp.cp_arrived in
    let colors = List.sort_uniq compare (List.map (fun a -> a.cpl_color) arrivals) in
    List.iter
      (fun c ->
        let members =
          List.filter (fun a -> a.cpl_color = c) arrivals
          |> List.sort (fun a b -> compare (a.cpl_key, a.cpl_rank) (b.cpl_key, b.cpl_rank))
        in
        let ranks = Array.of_list (List.map (fun a -> a.cpl_rank) members) in
        let id = eng.next_comm in
        eng.next_comm <- id + 1;
        Hashtbl.replace eng.comm_ranks id ranks;
        Array.iteri
          (fun idx world_rank ->
            eng.procs.(world_rank).split_result <- Some { c_id = id; c_ranks = ranks; c_my = idx })
          ranks)
      colors;
    coll_finish ctx comm cp cp_key ~kind:"split"
  end
  else coll_wait ctx cp;
  match ctx.proc.split_result with
  | Some newcomm ->
      ctx.proc.split_result <- None;
      emit ~observe:false ctx
        (Call.Comm_split { comm = comm.c_id; color; key; newcomm = newcomm.c_id });
      newcomm
  | None -> assert false

let comm_dup ctx comm =
  notify_call ctx (Call.Comm_dup { comm = comm.c_id; newcomm = -1 });
  let cp, cp_key, last = coll_join ctx comm ~kind:"dup" ~bytes:0 ~color:0 ~key:0 in
  if last then begin
    let eng = ctx.eng in
    let id = eng.next_comm in
    eng.next_comm <- id + 1;
    Hashtbl.replace eng.comm_ranks id comm.c_ranks;
    Array.iteri
      (fun idx world_rank ->
        eng.procs.(world_rank).split_result <- Some { c_id = id; c_ranks = comm.c_ranks; c_my = idx })
      comm.c_ranks;
    coll_finish ctx comm cp cp_key ~kind:"dup"
  end
  else coll_wait ctx cp;
  match ctx.proc.split_result with
  | Some newcomm ->
      ctx.proc.split_result <- None;
      emit ~observe:false ctx (Call.Comm_dup { comm = comm.c_id; newcomm = newcomm.c_id });
      newcomm
  | None -> assert false

let comm_free ctx comm =
  emit ctx (Call.Comm_free { comm = comm.c_id });
  ctx.proc.clock <- ctx.proc.clock +. call_overhead ctx.eng

(* ------------------------------------------------------------------ *)
(* MPI-IO                                                               *)

(* Collective open: every member gets the same fresh file id, allocated by
   the last arriver (like comm_split's id agreement, reusing split_result
   is unnecessary since ids are deterministic: the last arriver bumps the
   counter once and members read it after the collective). *)
let file_open ctx comm =
  let eng = ctx.eng in
  notify_call ctx (Call.File_open { comm = comm.c_id; file = -1 });
  let cp, cp_key, last = coll_join ctx comm ~kind:"file_open" ~bytes:0 ~color:0 ~key:0 in
  if last then begin
    let id = eng.next_file in
    eng.next_file <- id + 1;
    List.iter (fun a -> eng.procs.(a.cpl_rank).file_result <- id) cp.cp_arrived;
    coll_finish ctx comm cp cp_key ~kind:"file_open"
  end
  else coll_wait ctx cp;
  let file = { f_id = ctx.proc.file_result; f_comm = comm } in
  ctx.proc.file_result <- -1;
  emit ~observe:false ctx (Call.File_open { comm = comm.c_id; file = file.f_id });
  file

let file_close ctx file =
  emit ctx (Call.File_close { file = file.f_id });
  simple_collective ctx file.f_comm ~kind:"file_close" ~bytes:0

let file_write_all ctx file ~dt ~count =
  emit ctx (Call.File_write_all { file = file.f_id; dt; count });
  simple_collective ctx file.f_comm ~kind:"file_write_all" ~bytes:(Datatype.bytes dt ~count)

let file_read_all ctx file ~dt ~count =
  emit ctx (Call.File_read_all { file = file.f_id; dt; count });
  simple_collective ctx file.f_comm ~kind:"file_read_all" ~bytes:(Datatype.bytes dt ~count)

let independent_io ctx file ~dt ~count ~write call =
  emit ctx call;
  ignore file;
  let st = ctx.eng.platform.Spec.storage in
  let bw = if write then st.Spec.write_bandwidth_bps else st.Spec.read_bandwidth_bps in
  let eff = bw /. float_of_int st.Spec.stripe_share in
  ctx.proc.clock <-
    ctx.proc.clock +. st.Spec.per_call_latency_s
    +. (float_of_int (Datatype.bytes dt ~count) /. eff)

let file_write_at ctx file ~dt ~count =
  independent_io ctx file ~dt ~count ~write:true
    (Call.File_write_at { file = file.f_id; dt; count })

let file_read_at ctx file ~dt ~count =
  independent_io ctx file ~dt ~count ~write:false
    (Call.File_read_at { file = file.f_id; dt; count })

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)

let run ~platform ~impl ~nranks ?hook ?observer ?(seed = 42) ?(counter_noise = 0.01) program =
  if nranks <= 0 then invalid_arg "Engine.run: nranks must be positive";
  let root_rng = Rng.create seed in
  let procs =
    Array.init nranks (fun rank ->
        {
          rank;
          papi =
            Papi.create ~cpu:platform.Spec.cpu ~noise:counter_noise ~rng:(Rng.split root_rng);
          clock = 0.0;
          status = Fresh;
          k = None;
          resume_clock = 0.0;
          split_result = None;
          file_result = -1;
          blocked_on = "";
          coll_seq = Hashtbl.create 4;
        })
  in
  let eng =
    {
      platform;
      impl;
      nranks;
      procs;
      runq = Queue.create ();
      unexpected = Hashtbl.create 64;
      posted = Hashtbl.create 64;
      wildcard_posted = Hashtbl.create 8;
      comm_ranks = Hashtbl.create 8;
      pending_colls = Hashtbl.create 8;
      hook;
      observer;
      next_req = 0;
      next_comm = 1;
      next_file = 0;
      total_calls = 0;
      call_counts = Array.make Call.n_kinds 0;
      call_bytes = Array.make Call.n_kinds 0;
      coll_latency = None;
    }
  in
  let world_ranks = Array.init nranks (fun i -> i) in
  Hashtbl.replace eng.comm_ranks 0 world_ranks;
  for r = 0 to nranks - 1 do
    Queue.push r eng.runq
  done;
  let start_fiber rank =
    let proc = procs.(rank) in
    let ctx = { eng; proc; world = { c_id = 0; c_ranks = world_ranks; c_my = rank } } in
    let handler : (unit, unit) Effect.Deep.handler =
      {
        retc = (fun () -> proc.status <- Done);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    proc.k <- Some k;
                    proc.status <- Blocked)
            | _ -> None);
      }
    in
    Effect.Deep.match_with (fun () -> program ctx) () handler
  in
  let step rank =
    let proc = procs.(rank) in
    match proc.status with
    | Fresh ->
        proc.status <- Running;
        start_fiber rank
    | Runnable -> begin
        proc.status <- Running;
        match proc.k with
        | Some k ->
            proc.k <- None;
            Effect.Deep.continue k ()
        | None -> assert false
      end
    | Running | Blocked | Done ->
        (* stale queue entry: the rank was woken twice or finished *)
        ()
  in
  let rec loop () =
    match Queue.take_opt eng.runq with
    | Some rank ->
        step rank;
        loop ()
    | None ->
        let blocked =
          Array.to_list procs
          |> List.filter (fun p -> p.status <> Done)
          |> List.map (fun p -> Printf.sprintf "rank %d on %s" p.rank p.blocked_on)
        in
        if blocked <> [] then
          raise
            (Deadlock
               (Printf.sprintf "%d rank(s) blocked: %s" (List.length blocked)
                  (String.concat "; " blocked)))
  in
  loop ();
  let unreceived = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) eng.unexpected 0 in
  let unreceived_wildcard_prone =
    (* leftovers on a (comm, dst) where dst posted a wildcard recv at some
       point: a different wildcard matching could have absorbed them, so
       they are not provably orphaned sends *)
    Hashtbl.fold
      (fun key q acc ->
        if Hashtbl.mem eng.wildcard_posted key then acc + Queue.length q else acc)
      eng.unexpected 0
  in
  if Metrics.enabled () then begin
    (* flush the per-kind accumulators gathered by [count_call] into the
       shared registry (one lookup + add per kind actually used, instead
       of two atomic increments per MPI event) *)
    for i = 0 to Call.n_kinds - 1 do
      if eng.call_counts.(i) > 0 then begin
        let name = Call.kind_name i in
        Metrics.incr (Metrics.counter ("mpi.calls." ^ name)) eng.call_counts.(i);
        Metrics.incr (Metrics.counter ("mpi.bytes." ^ name)) eng.call_bytes.(i);
        eng.call_counts.(i) <- 0;
        eng.call_bytes.(i) <- 0
      end
    done;
    Metrics.incr (Metrics.counter "engine.runs") 1;
    Metrics.incr (Metrics.counter "engine.calls") eng.total_calls;
    Metrics.observe
      (Metrics.histogram "engine.simulated_elapsed_s")
      (Array.fold_left (fun acc p -> max acc p.clock) 0.0 procs)
  end;
  {
    elapsed = Array.fold_left (fun acc p -> max acc p.clock) 0.0 procs;
    per_rank_elapsed = Array.map (fun p -> p.clock) procs;
    per_rank_counters = Array.map (fun p -> Papi.totals p.papi) procs;
    total_calls = eng.total_calls;
    unreceived_messages = unreceived;
    unreceived_wildcard_prone;
  }
