lib/blocks/microbench.mli: Block Siesta_numerics Siesta_perf Siesta_platform
