(** NPB CG (conjugate gradient), class D shape: na = 1.5M rows, nonzer =
    21, on a 2^ceil(k/2) x 2^floor(k/2) process grid.

    CG is the point-to-point-heavy NPB kernel: row sums of the sparse
    matvec combine through log2(ncols) pairwise exchange stages, a
    transpose exchange redistributes the result, and the two dot products
    per iteration run their own pairwise reduction chains — no MPI
    collectives except the final norm. *)

val default_iterations : int
val na : int
val nonzer : int

val program :
  ?iterations:int -> nranks:int -> unit -> Siesta_mpi.Engine.ctx -> unit

val valid_procs : int -> bool
(** Powers of two only. *)
