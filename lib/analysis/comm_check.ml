module Merged = Siesta_merge.Merged
module Rank_list = Siesta_merge.Rank_list
module Grammar = Siesta_grammar.Grammar
module Event = Siesta_trace.Event
module Call = Siesta_mpi.Call
module Datatype = Siesta_mpi.Datatype
module Op = Siesta_mpi.Op
module Mpi_impl = Siesta_platform.Mpi_impl
module Json = Siesta_obs.Json
module Metrics = Siesta_obs.Metrics

type report = {
  k_nranks : int;
  k_impl : string;
  k_eager_threshold : int;
  k_sends : int;
  k_recvs : int;
  k_wildcard_recvs : int;
  k_rdv_sends : int;
  k_collectives : int;
  k_unmatched_sends : int;
  k_unmatched_recvs : int;
  k_deadlock_cycles : int;
  k_collective_mismatches : int;
  k_reasons : string list;
}

type verdict = Clean | Violated of string list

let verdict r = if r.k_reasons = [] then Clean else Violated r.k_reasons

let verdict_name = function Clean -> "clean" | Violated _ -> "violated"

let verdict_rank = function "clean" -> 0 | "violated" -> 1 | _ -> 2

(* ------------------------------------------------------------------ *)
(* Integral bipartite max-flow over matching classes.  Class counts can
   be large (one class covers thousands of identical messages), so this
   is flow with capacities, not unit matching: Edmonds-Karp augments by
   the path bottleneck, and the class graph is tiny (distinct (src,tag)
   pairs per destination), so the quadratic node scan never matters. *)

let max_flow ~ns ~nr ~scap ~rcap ~compat =
  let n = ns + nr + 2 in
  let source = ns + nr and sink = ns + nr + 1 in
  let cap = Array.make_matrix n n 0 in
  Array.iteri (fun i c -> cap.(source).(i) <- c) scap;
  Array.iteri (fun j c -> cap.(ns + j).(sink) <- c) rcap;
  for i = 0 to ns - 1 do
    for j = 0 to nr - 1 do
      if compat i j then cap.(i).(ns + j) <- max_int / 2
    done
  done;
  let continue = ref true in
  while !continue do
    let prev = Array.make n (-1) in
    prev.(source) <- source;
    let q = Queue.create () in
    Queue.add source q;
    let found = ref false in
    while (not (Queue.is_empty q)) && not !found do
      let u = Queue.pop q in
      for v = 0 to n - 1 do
        if prev.(v) < 0 && cap.(u).(v) > 0 then begin
          prev.(v) <- u;
          if v = sink then found := true else Queue.add v q
        end
      done
    done;
    if not !found then continue := false
    else begin
      let rec bottleneck v acc =
        if v = source then acc
        else bottleneck prev.(v) (min acc cap.(prev.(v)).(v))
      in
      let f = bottleneck sink max_int in
      let rec apply v =
        if v <> source then begin
          let u = prev.(v) in
          cap.(u).(v) <- cap.(u).(v) - f;
          cap.(v).(u) <- cap.(v).(u) + f;
          apply u
        end
      in
      apply sink
    end
  done;
  cap

(* ------------------------------------------------------------------ *)

(* One collective occurrence, reduced to what must agree across the
   participating ranks: kind, root, reduction operator.  Counts are
   deliberately excluded (Alltoallv legitimately varies per rank). *)
let coll_sig name ~root ~op =
  match (root, op) with
  | -1, "" -> name
  | -1, op -> Printf.sprintf "%s(op=%s)" name op
  | root, "" -> Printf.sprintf "%s(root=%d)" name root
  | root, op -> Printf.sprintf "%s(root=%d,op=%s)" name root op

let world_comm = 0

(* reason-string suffix naming the communicator, silent for world so
   historical reason spellings (and anything grepping them) survive *)
let on_comm c = if c = world_comm then "" else Printf.sprintf " on comm %d" c

let check ~impl (m : Merged.t) =
  let n = m.Merged.nranks in
  let thr = impl.Mpi_impl.eager_threshold_bytes in
  (* (comm, src, dst, tag) -> send occurrences,
     (pos, is-rendezvous-blocking), reverse program order *)
  let sends : (int * int * int * int, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* (comm, dst, src, tag) -> explicit recv occurrences, (pos, is-blocking) *)
  let recvs : (int * int * int * int, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* (comm, dst, src pattern, tag pattern) -> wildcard recv count *)
  let wilds : (int * int * int option * int option, int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  (* comm -> rank -> collective signatures, reverse program order *)
  let colls : (int, (int, string list ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let blocking = Array.make n [] in
  let sends_total = ref 0
  and recvs_total = ref 0
  and wild_total = ref 0
  and rdv_total = ref 0
  and coll_total = ref 0 in
  let root_violations : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let push tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add tbl key (ref [ v ])
  in
  for r = 0 to n - 1 do
    let seq = Merged.expand_for_rank m r in
    let add_send ~blocks pos (p : Event.p2p) =
      incr sends_total;
      let dst = (r + p.Event.rel_peer) mod n in
      let rdv = blocks && Datatype.bytes p.Event.dt ~count:p.Event.count > thr in
      if rdv then begin
        incr rdv_total;
        blocking.(r) <- pos :: blocking.(r)
      end;
      push sends (p.Event.comm, r, dst, p.Event.tag) (pos, rdv)
    in
    let add_recv ~blocks pos (p : Event.p2p) =
      incr recvs_total;
      if p.Event.rel_peer = Call.any_source || p.Event.tag = Call.any_tag then begin
        incr wild_total;
        let sp =
          if p.Event.rel_peer = Call.any_source then None
          else Some ((r + p.Event.rel_peer) mod n)
        and tp = if p.Event.tag = Call.any_tag then None else Some p.Event.tag in
        match Hashtbl.find_opt wilds (p.Event.comm, r, sp, tp) with
        | Some c -> incr c
        | None -> Hashtbl.add wilds (p.Event.comm, r, sp, tp) (ref 1)
      end
      else begin
        let src = (r + p.Event.rel_peer) mod n in
        if blocks then blocking.(r) <- pos :: blocking.(r);
        push recvs (p.Event.comm, r, src, p.Event.tag) (pos, blocks)
      end
    in
    let add_coll comm sg =
      incr coll_total;
      let per_rank =
        match Hashtbl.find_opt colls comm with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 8 in
            Hashtbl.add colls comm t;
            t
      in
      push per_rank r sg
    in
    let check_root comm name root =
      if comm = world_comm && (root < 0 || root >= n) then
        Hashtbl.replace root_violations
          (Printf.sprintf
             "collective root out of range: %s root %d on comm %d (nranks %d)"
             name root comm n)
          ()
    in
    Array.iteri
      (fun pos tid ->
        match m.Merged.terminals.(tid) with
        | Event.Send p -> add_send ~blocks:true pos p
        | Event.Isend (p, _) -> add_send ~blocks:false pos p
        | Event.Recv p -> add_recv ~blocks:true pos p
        | Event.Irecv (p, _) -> add_recv ~blocks:false pos p
        | Event.Sendrecv { send; recv } ->
            add_send ~blocks:false pos send;
            add_recv ~blocks:false pos recv
        | Event.Barrier { comm } -> add_coll comm (coll_sig "Barrier" ~root:(-1) ~op:"")
        | Event.Bcast { comm; root; _ } ->
            check_root comm "Bcast" root;
            add_coll comm (coll_sig "Bcast" ~root ~op:"")
        | Event.Reduce { comm; root; op; _ } ->
            check_root comm "Reduce" root;
            add_coll comm (coll_sig "Reduce" ~root ~op:(Op.name op))
        | Event.Allreduce { comm; op; _ } ->
            add_coll comm (coll_sig "Allreduce" ~root:(-1) ~op:(Op.name op))
        | Event.Alltoall { comm; _ } -> add_coll comm (coll_sig "Alltoall" ~root:(-1) ~op:"")
        | Event.Alltoallv { comm; _ } ->
            add_coll comm (coll_sig "Alltoallv" ~root:(-1) ~op:"")
        | Event.Allgather { comm; _ } ->
            add_coll comm (coll_sig "Allgather" ~root:(-1) ~op:"")
        | Event.Gather { comm; root; _ } ->
            check_root comm "Gather" root;
            add_coll comm (coll_sig "Gather" ~root ~op:"")
        | Event.Scatter { comm; root; _ } ->
            check_root comm "Scatter" root;
            add_coll comm (coll_sig "Scatter" ~root ~op:"")
        | Event.Scan { comm; op; _ } ->
            add_coll comm (coll_sig "Scan" ~root:(-1) ~op:(Op.name op))
        | Event.Exscan { comm; op; _ } ->
            add_coll comm (coll_sig "Exscan" ~root:(-1) ~op:(Op.name op))
        | Event.Reduce_scatter { comm; op; _ } ->
            add_coll comm (coll_sig "Reduce_scatter" ~root:(-1) ~op:(Op.name op))
        | Event.Ibarrier { comm; _ } ->
            add_coll comm (coll_sig "Ibarrier" ~root:(-1) ~op:"")
        | Event.Ibcast { comm; root; _ } ->
            check_root comm "Ibcast" root;
            add_coll comm (coll_sig "Ibcast" ~root ~op:"")
        | Event.Iallreduce { comm; op; _ } ->
            add_coll comm (coll_sig "Iallreduce" ~root:(-1) ~op:(Op.name op))
        | Event.Comm_split { comm; _ } ->
            add_coll comm (coll_sig "Comm_split" ~root:(-1) ~op:"")
        | Event.Comm_dup { comm; _ } -> add_coll comm (coll_sig "Comm_dup" ~root:(-1) ~op:"")
        | Event.Comm_free _ | Event.Wait _ | Event.Waitall _
        | Event.File_open _ | Event.File_close _ | Event.File_write_all _
        | Event.File_read_all _ | Event.File_write_at _ | Event.File_read_at _
        | Event.Compute _ ->
            ())
      seq
  done;
  (* --- check 1: matching completeness per (communicator, destination) *)
  (* a send can only ever match a recv posted on the same communicator,
     so the flow problem decomposes per (comm, dst) pair — p2p traffic
     balancing globally but not within a sub-communicator is a defect
     this (and not a world-only keying) catches *)
  let dsts = Hashtbl.create n in
  Hashtbl.iter (fun (c, _, dst, _) _ -> Hashtbl.replace dsts (c, dst) ()) sends;
  Hashtbl.iter (fun (c, dst, _, _) _ -> Hashtbl.replace dsts (c, dst) ()) recvs;
  Hashtbl.iter (fun (c, dst, _, _) _ -> Hashtbl.replace dsts (c, dst) ()) wilds;
  let unmatched_send_reasons = ref []
  and unmatched_recv_reasons = ref []
  and unmatched_sends = ref 0
  and unmatched_recvs = ref 0 in
  Hashtbl.iter
    (fun (comm, dst) () ->
      let sclasses = ref [] in
      Hashtbl.iter
        (fun (c, src, d, tag) l ->
          if c = comm && d = dst then sclasses := (src, tag, List.length !l) :: !sclasses)
        sends;
      let rclasses = ref [] in
      Hashtbl.iter
        (fun (c, d, src, tag) l ->
          if c = comm && d = dst then rclasses := (Some src, Some tag, List.length !l) :: !rclasses)
        recvs;
      Hashtbl.iter
        (fun (c, d, sp, tp) cnt ->
          if c = comm && d = dst then rclasses := (sp, tp, !cnt) :: !rclasses)
        wilds;
      let sc = Array.of_list (List.sort compare !sclasses)
      and rc = Array.of_list (List.sort compare !rclasses) in
      let ns = Array.length sc and nr = Array.length rc in
      let cap =
        max_flow ~ns ~nr
          ~scap:(Array.map (fun (_, _, c) -> c) sc)
          ~rcap:(Array.map (fun (_, _, c) -> c) rc)
          ~compat:(fun i j ->
            let src, tag, _ = sc.(i) and sp, tp, _ = rc.(j) in
            (sp = None || sp = Some src) && (tp = None || tp = Some tag))
      in
      let source = ns + nr and sink = ns + nr + 1 in
      Array.iteri
        (fun i (src, tag, _) ->
          let left = cap.(source).(i) in
          if left > 0 then begin
            unmatched_sends := !unmatched_sends + left;
            unmatched_send_reasons :=
              Printf.sprintf "unmatched send: rank %d -> rank %d tag %d x%d%s" src dst tag
                left (on_comm comm)
              :: !unmatched_send_reasons
          end)
        sc;
      Array.iteri
        (fun j (sp, tp, _) ->
          let left = cap.(ns + j).(sink) in
          if left > 0 then begin
            unmatched_recvs := !unmatched_recvs + left;
            let ps = function None -> "any" | Some v -> string_of_int v in
            unmatched_recv_reasons :=
              Printf.sprintf "unmatched recv: rank %d <- rank %s tag %s x%d%s" dst (ps sp)
                (ps tp) left (on_comm comm)
              :: !unmatched_recv_reasons
          end)
        rc)
    dsts;
  (* --- check 2: rendezvous waits-for cycle --------------------------- *)
  (* Nodes are the blocking occurrences (rendezvous-sized blocking sends
     plus blocking explicit recvs).  FIFO-match sends to recvs per
     (src, dst, tag) — MPI's non-overtaking rule — then:
       - a rendezvous send completes only once its receiver has *reached*
         the matching recv, i.e. completed its last blocking occurrence
         strictly before it;
       - a blocking recv completes only once its sender has *reached* the
         matching send.
     Plus the program-order chain edge within each rank.  A cycle in this
     graph is a schedule on which every rank in the cycle blocks forever. *)
  let blk = Array.map (fun l -> Array.of_list (List.rev l)) blocking in
  let offsets = Array.make (n + 1) 0 in
  for r = 0 to n - 1 do
    offsets.(r + 1) <- offsets.(r) + Array.length blk.(r)
  done;
  let total = offsets.(n) in
  let node_rank = Array.make (max 1 total) 0 in
  for r = 0 to n - 1 do
    for k = offsets.(r) to offsets.(r + 1) - 1 do
      node_rank.(k) <- r
    done
  done;
  (* index of a rank's last blocking occurrence strictly before [pos] *)
  let last_blocking_before r pos =
    let a = blk.(r) in
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < pos then lo := mid + 1 else hi := mid
    done;
    !lo - 1
  in
  let match_tbl : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (c, src, dst, tag) sl ->
      match Hashtbl.find_opt recvs (c, dst, src, tag) with
      | None -> ()
      | Some rl ->
          let sa = Array.of_list (List.rev !sl) and ra = Array.of_list (List.rev !rl) in
          for k = 0 to min (Array.length sa) (Array.length ra) - 1 do
            let spos, srdv = sa.(k) and rpos, rblk = ra.(k) in
            if srdv then Hashtbl.replace match_tbl (src, spos) (dst, rpos);
            if rblk then Hashtbl.replace match_tbl (dst, rpos) (src, spos)
          done)
    sends;
  let edges id =
    let r = node_rank.(id) in
    let k = id - offsets.(r) in
    let chain = if k > 0 then [ id - 1 ] else [] in
    match Hashtbl.find_opt match_tbl (r, blk.(r).(k)) with
    | None -> chain
    | Some (peer, pos) ->
        let idx = last_blocking_before peer pos in
        if idx >= 0 then (offsets.(peer) + idx) :: chain else chain
  in
  let cycle = ref None in
  let color = Array.make (max 1 total) 0 in
  let start = ref 0 in
  while !cycle = None && !start < total do
    if color.(!start) = 0 then begin
      let stack = ref [ (!start, edges !start) ] in
      color.(!start) <- 1;
      while !stack <> [] && !cycle = None do
        match !stack with
        | [] -> ()
        | (u, es) :: rest -> (
            match es with
            | [] ->
                color.(u) <- 2;
                stack := rest
            | v :: es' ->
                stack := (u, es') :: rest;
                if color.(v) = 1 then begin
                  (* the stack is exactly the grey DFS path; cut it at v *)
                  let rec take acc = function
                    | (x, _) :: tl -> if x = v then x :: acc else take (x :: acc) tl
                    | [] -> acc
                  in
                  cycle := Some (take [] !stack)
                end
                else if color.(v) = 0 then begin
                  color.(v) <- 1;
                  stack := (v, edges v) :: !stack
                end)
      done
    end;
    incr start
  done;
  let deadlock_reasons, deadlock_cycles =
    match !cycle with
    | None -> ([], 0)
    | Some nodes ->
        let ranks = List.map (fun id -> node_rank.(id)) nodes in
        let dedup =
          List.fold_left
            (fun acc r -> match acc with x :: _ when x = r -> acc | _ -> r :: acc)
            [] ranks
          |> List.rev
        in
        let path = dedup @ [ List.hd dedup ] in
        ( [
            Printf.sprintf
              "potential rendezvous deadlock: blocking-send cycle %s (eager threshold %d B)"
              (String.concat " -> " (List.map string_of_int path))
              thr;
          ],
          1 )
  in
  (* --- check 3: collective consistency ------------------------------- *)
  let coll_reasons = ref [] and coll_mismatches = ref 0 in
  let comms = Hashtbl.fold (fun c _ acc -> c :: acc) colls [] |> List.sort compare in
  List.iter
    (fun comm ->
      let per_rank = Hashtbl.find colls comm in
      let seq_of r =
        match Hashtbl.find_opt per_rank r with
        | Some l -> Array.of_list (List.rev !l)
        | None -> [||]
      in
      let participants =
        if comm = world_comm then List.init n (fun r -> r)
        else Hashtbl.fold (fun r _ acc -> r :: acc) per_rank [] |> List.sort compare
      in
      match participants with
      | [] | [ _ ] -> ()
      | r0 :: rest ->
          let ref_seq = seq_of r0 in
          let mism =
            List.find_opt (fun r -> seq_of r <> ref_seq) rest
          in
          (match mism with
          | None -> ()
          | Some r ->
              incr coll_mismatches;
              let a = ref_seq and b = seq_of r in
              let la = Array.length a and lb = Array.length b in
              let rec first i =
                if i >= la || i >= lb then
                  Printf.sprintf "rank %d runs %d collective(s), rank %d runs %d" r0 la r lb
                else if a.(i) <> b.(i) then
                  Printf.sprintf "step %d: rank %d %s vs rank %d %s" i r0 a.(i) r b.(i)
                else first (i + 1)
              in
              coll_reasons :=
                Printf.sprintf "collective mismatch on comm %d: %s" comm (first 0)
                :: !coll_reasons))
    comms;
  let root_reasons =
    Hashtbl.fold (fun s () acc -> s :: acc) root_violations [] |> List.sort compare
  in
  let reasons =
    List.sort compare !unmatched_send_reasons
    @ List.sort compare !unmatched_recv_reasons
    @ deadlock_reasons
    @ List.sort compare !coll_reasons
    @ root_reasons
  in
  {
    k_nranks = n;
    k_impl = impl.Mpi_impl.name;
    k_eager_threshold = thr;
    k_sends = !sends_total;
    k_recvs = !recvs_total;
    k_wildcard_recvs = !wild_total;
    k_rdv_sends = !rdv_total;
    k_collectives = !coll_total;
    k_unmatched_sends = !unmatched_sends;
    k_unmatched_recvs = !unmatched_recvs;
    k_deadlock_cycles = deadlock_cycles;
    k_collective_mismatches = !coll_mismatches + List.length root_reasons;
    k_reasons = reasons;
  }

(* ------------------------------------------------------------------ *)
(* Renderings *)

let to_markdown r =
  let b = Buffer.create 512 in
  Buffer.add_string b "### Static communication check\n\n";
  Buffer.add_string b
    (Printf.sprintf "- ranks: %d, MPI profile: %s (eager threshold %d B)\n" r.k_nranks
       r.k_impl r.k_eager_threshold);
  Buffer.add_string b
    (Printf.sprintf "- point-to-point: %d sends (%d rendezvous), %d recvs (%d wildcard)\n"
       r.k_sends r.k_rdv_sends r.k_recvs r.k_wildcard_recvs);
  Buffer.add_string b (Printf.sprintf "- collectives: %d\n" r.k_collectives);
  (match verdict r with
  | Clean -> Buffer.add_string b "\n**Communication check: clean.**\n"
  | Violated reasons ->
      Buffer.add_string b "\n**Communication check: VIOLATED:**\n\n";
      List.iter (fun s -> Buffer.add_string b (Printf.sprintf "- %s\n" s)) reasons);
  Buffer.contents b

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"nranks\": %d,\n" r.k_nranks);
  Buffer.add_string b (Printf.sprintf "  \"impl\": \"%s\",\n" (Json.escape r.k_impl));
  Buffer.add_string b
    (Printf.sprintf "  \"eager_threshold_bytes\": %d,\n" r.k_eager_threshold);
  Buffer.add_string b
    (Printf.sprintf "  \"sends\": %d,\n  \"recvs\": %d,\n  \"wildcard_recvs\": %d,\n"
       r.k_sends r.k_recvs r.k_wildcard_recvs);
  Buffer.add_string b
    (Printf.sprintf "  \"rendezvous_sends\": %d,\n  \"collectives\": %d,\n" r.k_rdv_sends
       r.k_collectives);
  Buffer.add_string b
    (Printf.sprintf
       "  \"unmatched_sends\": %d,\n  \"unmatched_recvs\": %d,\n  \"deadlock_cycles\": %d,\n"
       r.k_unmatched_sends r.k_unmatched_recvs r.k_deadlock_cycles);
  Buffer.add_string b
    (Printf.sprintf "  \"collective_mismatches\": %d,\n" r.k_collective_mismatches);
  Buffer.add_string b
    (Printf.sprintf "  \"verdict\": \"%s\",\n" (verdict_name (verdict r)));
  Buffer.add_string b "  \"reasons\": [";
  Buffer.add_string b
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (Json.escape s)) r.k_reasons));
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

let of_json j =
  let num name =
    match Json.member name j with
    | Some v -> (
        match Json.to_float_opt v with
        | Some f -> int_of_float f
        | None -> failwith ("Comm_check.of_json: non-numeric " ^ name))
    | None -> failwith ("Comm_check.of_json: missing " ^ name)
  in
  let str name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some s -> s
    | None -> failwith ("Comm_check.of_json: missing " ^ name)
  in
  let reasons =
    match Json.member "reasons" j with
    | Some a -> List.filter_map Json.to_string_opt (Json.to_list a)
    | None -> failwith "Comm_check.of_json: missing reasons"
  in
  {
    k_nranks = num "nranks";
    k_impl = str "impl";
    k_eager_threshold = num "eager_threshold_bytes";
    k_sends = num "sends";
    k_recvs = num "recvs";
    k_wildcard_recvs = num "wildcard_recvs";
    k_rdv_sends = num "rendezvous_sends";
    k_collectives = num "collectives";
    k_unmatched_sends = num "unmatched_sends";
    k_unmatched_recvs = num "unmatched_recvs";
    k_deadlock_cycles = num "deadlock_cycles";
    k_collective_mismatches = num "collective_mismatches";
    k_reasons = reasons;
  }

let publish_metrics r =
  Metrics.set (Metrics.gauge "check.clean") (if r.k_reasons = [] then 1.0 else 0.0);
  Metrics.set (Metrics.gauge "check.unmatched_sends") (float_of_int r.k_unmatched_sends);
  Metrics.set (Metrics.gauge "check.unmatched_recvs") (float_of_int r.k_unmatched_recvs);
  Metrics.set (Metrics.gauge "check.deadlock_cycles") (float_of_int r.k_deadlock_cycles);
  Metrics.set
    (Metrics.gauge "check.collective_mismatches")
    (float_of_int r.k_collective_mismatches)

(* ------------------------------------------------------------------ *)
(* Deliberate damage, for testing the detector *)

type fault = [ `Mismatch | `Deadlock | `Collective ]

let fault_names : (string * fault) list =
  [ ("mismatch", `Mismatch); ("deadlock", `Deadlock); ("collective", `Collective) ]

let fault_of_string s =
  match List.assoc_opt s fault_names with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "unknown fault %S (expected mismatch|deadlock|collective)" s)

(* Splice [ins] into [l] before position [pos] ([pos >= length] appends). *)
let insert_at pos ins l =
  let rec go k rest =
    if k = pos then ins @ rest
    else
      match rest with
      | [] -> ins
      | x :: tl -> x :: go (k + 1) tl
  in
  go 0 l

(* [sites.(i mod len)] picks the injection position inside main cluster
   [i]'s entry list (clamped); absent or empty sites = append at the
   end, the historical behaviour.  All three fault classes flip the
   verdict at any position — the qcheck placement property drills
   exactly that. *)
let site_of sites i len =
  match sites with
  | Some a when Array.length a > 0 -> min (max 0 a.(i mod Array.length a)) len
  | _ -> len

let insert_everywhere ?sites (m : Merged.t) evs =
  let base = Array.length m.Merged.terminals in
  let terminals = Array.append m.Merged.terminals (Array.of_list evs) in
  let extra i =
    List.mapi
      (fun k _ ->
        { Merged.sym = Grammar.T (base + k); reps = 1; ranks = m.Merged.main_ranks.(i) })
      evs
  in
  let mains =
    Array.mapi
      (fun i entries -> insert_at (site_of sites i (List.length entries)) (extra i) entries)
      m.Merged.mains
  in
  { m with Merged.terminals; mains }

let perturb ?sites (what : fault) (m : Merged.t) =
  let n = m.Merged.nranks in
  match what with
  | `Mismatch ->
      (* every rank sends one small message nobody ever receives *)
      insert_everywhere ?sites m
        [ Event.Send { rel_peer = 1 mod n; tag = 9901; dt = Datatype.Byte; count = 1; comm = 0 } ]
  | `Deadlock ->
      (* a ring of above-threshold blocking sends posted before the
         matching recvs: counts match (check 1 stays clean) but every
         rank blocks in its rendezvous send — a full-ring cycle, a
         self-loop at nranks=1 *)
      let big = 1 lsl 20 in
      insert_everywhere ?sites m
        [
          Event.Send { rel_peer = 1 mod n; tag = 9902; dt = Datatype.Byte; count = big; comm = 0 };
          Event.Recv { rel_peer = (n - 1) mod n; tag = 9902; dt = Datatype.Byte; count = big; comm = 0 };
        ]
  | `Collective ->
      if n = 1 then
        (* single rank: damage the root instead of the participation *)
        insert_everywhere ?sites m
          [ Event.Bcast { comm = world_comm; root = n; dt = Datatype.Byte; count = 1 } ]
      else begin
        (* one rank runs an extra world collective the others never join *)
        let base = Array.length m.Merged.terminals in
        let terminals =
          Array.append m.Merged.terminals
            [|
              Event.Reduce
                { comm = world_comm; root = 0; dt = Datatype.Byte; count = 1; op = Op.Sum };
            |]
        in
        let lone =
          match Rank_list.to_list m.Merged.main_ranks.(0) with
          | r :: _ -> r
          | [] -> 0
        in
        let mains = Array.copy m.Merged.mains in
        let entry = { Merged.sym = Grammar.T base; reps = 1; ranks = Rank_list.singleton lone } in
        mains.(0) <- insert_at (site_of sites 0 (List.length mains.(0))) [ entry ] mains.(0);
        { m with Merged.terminals; mains }
      end
