(* NPB CG (conjugate gradient) skeleton, class D shape: the processes form
   a 2-D grid of 2^ceil(k/2) columns by 2^floor(k/2) rows.  Each iteration
   performs a sparse matrix-vector product whose row sums are combined by
   log2(ncols) pairwise exchange stages, a transpose exchange with the
   mirror rank, and two dot products reduced by pairwise exchanges — CG
   famously uses explicit send/recv chains instead of MPI collectives. *)

module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module K = Siesta_perf.Kernel

let default_iterations = 15

let na = 1_500_000  (* class D *)
let nonzer = 21

let tag_reduce = 30
let tag_transpose = 31
let tag_dot = 32

let program ?(iterations = default_iterations) ~nranks () ctx =
  let k = Common.log2_exact nranks in
  let ncols = 1 lsl ((k + 1) / 2) in
  let nrows = 1 lsl (k / 2) in
  let rank = E.rank ctx in
  let row = rank / ncols and col = rank mod ncols in
  ignore nrows;
  let rows_per_rank = na / nrows in
  let nnz_per_rank = na * nonzer / nranks in
  let matvec_kernel =
    K.streaming ~label:"matvec"
      ~flops:(2.0 *. float_of_int nnz_per_rank)
      ~bytes:(12.0 *. float_of_int nnz_per_rank)
  in
  let vector_kernel =
    K.streaming ~label:"axpy"
      ~flops:(4.0 *. float_of_int rows_per_rank)
      ~bytes:(3.0 *. 8.0 *. float_of_int rows_per_rank)
  in
  let exchange ~partner ~tag ~count =
    let r = E.irecv ctx ~src:partner ~tag ~dt:D.Double ~count in
    E.send ctx ~dest:partner ~tag ~dt:D.Double ~count;
    E.wait ctx r
  in
  (* sum partial matvec results across the process row *)
  let reduce_exch () =
    let stages = Common.log2_exact ncols in
    for s = 0 to stages - 1 do
      let partner_col = col lxor (1 lsl s) in
      let partner = (row * ncols) + partner_col in
      exchange ~partner ~tag:(tag_reduce + s) ~count:(rows_per_rank / ncols)
    done
  in
  (* exchange with the transpose rank to redistribute q *)
  let transpose () =
    if ncols = nrows * 2 then begin
      (* non-square grid: partner pairs columns *)
      let partner = (row * ncols) + (col lxor 1) in
      if partner <> rank then
        exchange ~partner ~tag:tag_transpose ~count:(rows_per_rank / ncols)
    end
    else begin
      let trow = col and tcol = row in
      let partner = (trow * ncols) + tcol in
      if partner <> rank then
        exchange ~partner ~tag:tag_transpose ~count:(rows_per_rank / ncols)
    end
  in
  let dot_product () =
    let stages = Common.log2_exact ncols in
    for s = 0 to stages - 1 do
      let partner_col = col lxor (1 lsl s) in
      let partner = (row * ncols) + partner_col in
      exchange ~partner ~tag:(tag_dot + s) ~count:1
    done;
    E.compute ctx (K.compute_bound ~label:"dot" ~flops:(2.0 *. float_of_int rows_per_rank)
                     ~div_frac:0.0)
  in
  (* setup: sparse matrix generation is rank-local and heavy *)
  E.compute ctx
    (K.streaming ~label:"makea"
       ~flops:(6.0 *. float_of_int nnz_per_rank)
       ~bytes:(16.0 *. float_of_int nnz_per_rank));
  E.barrier ctx (E.comm_world ctx);
  for _it = 1 to iterations do
    E.compute ctx matvec_kernel;
    reduce_exch ();
    transpose ();
    dot_product ();
    E.compute ctx vector_kernel;
    dot_product ();
    E.compute ctx vector_kernel
  done;
  (* final residual norm *)
  E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:1 ~op:Siesta_mpi.Op.Sum

let valid_procs p = match Common.log2_exact p with _ -> true | exception _ -> false
