(** End-to-end Siesta pipeline: trace -> compress -> merge -> synthesize
    -> (generate C | replay).

    This is the library's primary entry point.  A typical use:
    {[
      let spec = Pipeline.{ default_spec with workload = Registry.find "CG" } in
      let traced = Pipeline.trace spec in
      let artifact = Pipeline.synthesize traced in
      let c_code = Siesta_synth.Codegen_c.generate artifact.proxy in
      let replayed = Pipeline.run_proxy artifact ~platform ~impl in
    ]} *)

type spec = {
  workload : Siesta_workloads.Registry.t;
  nranks : int;
  iters : int option;  (** [None] = the workload's default iteration count *)
  platform : Siesta_platform.Spec.t;
  impl : Siesta_platform.Mpi_impl.t;
  seed : int;
  cluster_threshold : float;  (** computation-event clustering (Section 2.3) *)
}

val default_spec : spec
(** CG at 64 ranks on platform A under openmpi, seed 42. *)

val spec :
  ?iters:int ->
  ?platform:Siesta_platform.Spec.t ->
  ?impl:Siesta_platform.Mpi_impl.t ->
  ?seed:int ->
  ?cluster_threshold:float ->
  workload:string ->
  nranks:int ->
  unit ->
  spec
(** Convenience constructor; resolves the workload by name.
    @raise Not_found for an unknown workload
    @raise Invalid_argument if [nranks] is invalid for the workload. *)

type traced = {
  run_spec : spec;
  original : Siesta_mpi.Engine.result;  (** uninstrumented run *)
  instrumented : Siesta_mpi.Engine.result;  (** run under the tracer *)
  recorder : Siesta_trace.Recorder.t;
  overhead : float;  (** (instrumented - original) / original elapsed *)
  timings : (string * float) list;
      (** wall seconds per stage ("trace.original", "trace.instrumented"),
          measured on {!Siesta_obs.Clock} — the same clock the spans and
          bench drivers use *)
}

val trace : spec -> traced
(** Run the workload twice — bare and instrumented — on the generation
    platform. *)

type artifact = {
  traced : traced;
  merged : Siesta_merge.Merged.t;
  proxy : Siesta_synth.Proxy_ir.t;
  factor : float;
  timings : (string * float) list;
      (** the traced stages plus "merge" and "synthesize" *)
}

val synthesize : ?factor:float -> ?rle:bool -> ?domains:int -> traced -> artifact
(** Compress, merge and search computation proxies.  [factor] (default 1)
    produces a shrunk proxy; [rle] (default true) controls the Sequitur
    run-length constraint (ablation); [domains] sizes the merge stage's
    domain pool (default: auto via
    {!Siesta_util.Parallel.num_domains}). *)

val run_proxy :
  artifact ->
  platform:Siesta_platform.Spec.t ->
  impl:Siesta_platform.Mpi_impl.t ->
  Siesta_mpi.Engine.result
(** Execute the proxy on an arbitrary platform/implementation pair.  The
    returned elapsed time is the raw proxy time; multiply by
    [artifact.factor] to estimate the original. *)

val run_original :
  spec ->
  platform:Siesta_platform.Spec.t ->
  impl:Siesta_platform.Mpi_impl.t ->
  Siesta_mpi.Engine.result
(** Re-run the traced program itself elsewhere (the evaluation's ground
    truth for portability experiments). *)

(** {1 Fidelity observatory}

    Simulated-clock instrumentation of the runs themselves — see
    {!Siesta_analysis.Timeline} / {!Siesta_analysis.Divergence}. *)

val record_timeline : spec -> Siesta_analysis.Timeline.t * Siesta_mpi.Engine.result
(** Run the workload once under a timeline observer (timing identical to
    {!run_original} on the generation platform). *)

val capture_original : spec -> Siesta_analysis.Divergence.capture
(** Full divergence capture (calls + per-event counters + timeline) of
    the original program on the generation platform. *)

val capture_proxy :
  ?platform:Siesta_platform.Spec.t ->
  ?impl:Siesta_platform.Mpi_impl.t ->
  artifact ->
  Siesta_analysis.Divergence.capture
(** Same capture for the synthesized proxy replay; platform and
    implementation default to the generation pair. *)

type fidelity = {
  f_original : Siesta_analysis.Divergence.capture;
  f_proxy : Siesta_analysis.Divergence.capture;
  f_report : Siesta_analysis.Divergence.report;
}

val diff : artifact -> fidelity
(** Capture original and proxy on the generation platform, diff them, and
    publish the headline scores as [Siesta_obs.Metrics] gauges (a no-op
    when the registry is disabled).  Drives [siesta diff] and the
    report's Fidelity section. *)
