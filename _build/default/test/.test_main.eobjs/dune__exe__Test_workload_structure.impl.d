test/test_workload_structure.ml: Alcotest Array List Siesta_mpi Siesta_platform Siesta_trace Siesta_workloads String
