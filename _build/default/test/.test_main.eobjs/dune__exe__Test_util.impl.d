test/test_util.ml: Alcotest Array Bytes_fmt List Pretty_table Rng Siesta_util Stats String
