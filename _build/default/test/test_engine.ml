(* Tests for the discrete-event MPI runtime. *)

module E = Siesta_mpi.Engine
module Call = Siesta_mpi.Call
module D = Siesta_mpi.Datatype
module Op = Siesta_mpi.Op
module K = Siesta_perf.Kernel
module Spec = Siesta_platform.Spec
module Impl = Siesta_platform.Mpi_impl
module Rng = Siesta_util.Rng

let platform = Spec.platform_a
let impl = Impl.openmpi
let run ?hook ?seed ~nranks program = E.run ~platform ~impl ~nranks ?hook ?seed program

let kernel = K.compute_bound ~label:"k" ~flops:1e5 ~div_frac:0.01

(* ------------------------------------------------------------------ *)

let test_rank_and_size () =
  let seen = Array.make 4 (-1) in
  ignore
    (run ~nranks:4 (fun ctx ->
         seen.(E.rank ctx) <- E.rank ctx;
         Alcotest.(check int) "size" 4 (E.size ctx);
         Alcotest.(check int) "world size" 4 (E.comm_size ctx (E.comm_world ctx));
         Alcotest.(check int) "world rank" (E.rank ctx) (E.comm_rank ctx (E.comm_world ctx))));
  Alcotest.(check bool) "all ranks ran" true (seen = [| 0; 1; 2; 3 |])

let test_compute_advances_clock () =
  let res =
    run ~nranks:1 (fun ctx ->
        Alcotest.(check (float 0.0)) "starts at zero" 0.0 (E.wtime ctx);
        E.compute ctx kernel;
        Alcotest.(check bool) "advanced" true (E.wtime ctx > 0.0))
  in
  Alcotest.(check bool) "elapsed positive" true (res.E.elapsed > 0.0);
  Alcotest.(check bool) "counters recorded" true
    (res.E.per_rank_counters.(0).Siesta_perf.Counters.ins > 0.0)

let test_sleep_no_counters () =
  let res =
    run ~nranks:1 (fun ctx ->
        E.sleep ctx 0.5;
        Alcotest.(check (float 1e-12)) "slept" 0.5 (E.wtime ctx))
  in
  Alcotest.(check (float 0.0)) "no counters" 0.0
    res.E.per_rank_counters.(0).Siesta_perf.Counters.ins

let test_eager_send_recv () =
  let recv_time = ref 0.0 and send_done = ref 0.0 in
  ignore
    (run ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then begin
           E.send ctx ~dest:1 ~tag:1 ~dt:D.Double ~count:8;
           send_done := E.wtime ctx
         end
         else begin
           E.recv ctx ~src:0 ~tag:1 ~dt:D.Double ~count:8;
           recv_time := E.wtime ctx
         end));
  Alcotest.(check bool) "receiver waits for the wire" true (!recv_time > !send_done);
  Alcotest.(check bool) "eager sender does not block" true
    (!send_done < impl.Impl.call_overhead_s *. 2.0)

let test_rendezvous_send_blocks () =
  (* a rendezvous-size send cannot complete before the receiver posts *)
  let send_done = ref 0.0 in
  let recv_posted_at = 0.1 in
  ignore
    (run ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then begin
           E.send ctx ~dest:1 ~tag:1 ~dt:D.Double ~count:100_000;
           send_done := E.wtime ctx
         end
         else begin
           E.sleep ctx recv_posted_at;
           E.recv ctx ~src:0 ~tag:1 ~dt:D.Double ~count:100_000
         end));
  Alcotest.(check bool) "sender blocked until post" true (!send_done > recv_posted_at)

let test_isend_irecv_wait () =
  let overlap_ok = ref false in
  ignore
    (run ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then begin
           let r = E.isend ctx ~dest:1 ~tag:3 ~dt:D.Double ~count:64 in
           let before = E.wtime ctx in
           E.compute ctx kernel;
           overlap_ok := E.wtime ctx > before;
           E.wait ctx r
         end
         else begin
           let r = E.irecv ctx ~src:0 ~tag:3 ~dt:D.Double ~count:64 in
           E.compute ctx kernel;
           E.wait ctx r
         end));
  Alcotest.(check bool) "computation overlapped the transfer" true !overlap_ok

let test_waitall () =
  ignore
    (run ~nranks:3 (fun ctx ->
         let n = E.size ctx and me = E.rank ctx in
         let reqs =
           List.concat_map
             (fun peer ->
               if peer = me then []
               else
                 [
                   E.irecv ctx ~src:peer ~tag:9 ~dt:D.Int ~count:4;
                   E.isend ctx ~dest:peer ~tag:9 ~dt:D.Int ~count:4;
                 ])
             (List.init n Fun.id)
         in
         E.waitall ctx reqs))

let test_fifo_matching_per_channel () =
  (* two same-tag messages must match posted receives in order; the
     payload sizes let us observe which arrived first via timing *)
  let t_first = ref 0.0 and t_second = ref 0.0 in
  ignore
    (run ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then begin
           E.send ctx ~dest:1 ~tag:4 ~dt:D.Byte ~count:1;
           E.send ctx ~dest:1 ~tag:4 ~dt:D.Byte ~count:4000
         end
         else begin
           E.recv ctx ~src:0 ~tag:4 ~dt:D.Byte ~count:1;
           t_first := E.wtime ctx;
           E.recv ctx ~src:0 ~tag:4 ~dt:D.Byte ~count:4000;
           t_second := E.wtime ctx
         end));
  Alcotest.(check bool) "order preserved" true (!t_second > !t_first)

let test_tag_selectivity () =
  (* rank 1 receives tag 2 first although tag 1 was sent first *)
  ignore
    (run ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then begin
           E.send ctx ~dest:1 ~tag:1 ~dt:D.Int ~count:1;
           E.send ctx ~dest:1 ~tag:2 ~dt:D.Int ~count:1
         end
         else begin
           E.recv ctx ~src:0 ~tag:2 ~dt:D.Int ~count:1;
           E.recv ctx ~src:0 ~tag:1 ~dt:D.Int ~count:1
         end))

let test_any_source_and_any_tag () =
  ignore
    (run ~nranks:3 (fun ctx ->
         match E.rank ctx with
         | 0 ->
             E.recv ctx ~src:Call.any_source ~tag:7 ~dt:D.Int ~count:1;
             E.recv ctx ~src:Call.any_source ~tag:Call.any_tag ~dt:D.Int ~count:1
         | 1 -> E.send ctx ~dest:0 ~tag:7 ~dt:D.Int ~count:1
         | _ -> E.send ctx ~dest:0 ~tag:99 ~dt:D.Int ~count:1))

let test_sendrecv_exchange () =
  (* the classic head-to-head exchange that deadlocks with blocking
     send/recv pairs must work with sendrecv *)
  ignore
    (run ~nranks:2 (fun ctx ->
         let peer = 1 - E.rank ctx in
         E.sendrecv ctx ~dest:peer ~send_tag:5 ~src:peer ~recv_tag:5 ~dt:D.Double
           ~send_count:50_000 ~recv_count:50_000))

let test_barrier_synchronizes () =
  let after = Array.make 4 0.0 in
  ignore
    (run ~nranks:4 (fun ctx ->
         E.sleep ctx (0.01 *. float_of_int (E.rank ctx + 1));
         E.barrier ctx (E.comm_world ctx);
         after.(E.rank ctx) <- E.wtime ctx));
  (* everyone leaves the barrier no earlier than the slowest arriver *)
  Array.iter (fun t -> Alcotest.(check bool) "left after slowest" true (t >= 0.04)) after

let test_allreduce_uniform_finish () =
  let finish = Array.make 4 0.0 in
  ignore
    (run ~nranks:4 (fun ctx ->
         E.sleep ctx (0.005 *. float_of_int (E.rank ctx));
         E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:16 ~op:Op.Sum;
         finish.(E.rank ctx) <- E.wtime ctx));
  let f0 = finish.(0) in
  Array.iter (fun t -> Alcotest.(check (float 1e-9)) "same finish" f0 t) finish

let test_collective_cost_grows () =
  let time count nranks =
    (E.run ~platform ~impl ~nranks (fun ctx ->
         E.bcast ctx (E.comm_world ctx) ~root:0 ~dt:D.Double ~count))
      .E.elapsed
  in
  Alcotest.(check bool) "bigger payload costs more" true (time 100_000 8 > time 10 8);
  Alcotest.(check bool) "more ranks cost more" true (time 1000 64 > time 1000 4)

let test_gather_scatter_allgather_alltoall () =
  ignore
    (run ~nranks:8 (fun ctx ->
         let w = E.comm_world ctx in
         E.gather ctx w ~root:0 ~dt:D.Int ~count:10;
         E.scatter ctx w ~root:0 ~dt:D.Int ~count:10;
         E.allgather ctx w ~dt:D.Int ~count:10;
         E.alltoall ctx w ~dt:D.Int ~count:10;
         E.reduce ctx w ~root:3 ~dt:D.Double ~count:5 ~op:Op.Max;
         E.alltoallv ctx w ~dt:D.Int ~send_counts:(Array.init 8 (fun i -> i))))

let test_file_io () =
  let res =
    run ~nranks:4 (fun ctx ->
        let w = E.comm_world ctx in
        let f = E.file_open ctx w in
        E.file_write_all ctx f ~dt:D.Double ~count:100_000;
        E.file_read_all ctx f ~dt:D.Double ~count:100_000;
        E.file_write_at ctx f ~dt:D.Double ~count:1_000;
        E.file_close ctx f)
  in
  Alcotest.(check bool) "io time charged" true (res.E.elapsed > 1e-4);
  Alcotest.(check int) "five I/O calls per rank" 20 res.E.total_calls

let test_file_io_collective_sync () =
  (* a collective write finishes all ranks together *)
  let finish = Array.make 4 0.0 in
  ignore
    (run ~nranks:4 (fun ctx ->
         let f = E.file_open ctx (E.comm_world ctx) in
         E.sleep ctx (0.01 *. float_of_int (E.rank ctx));
         E.file_write_all ctx f ~dt:D.Double ~count:1000;
         finish.(E.rank ctx) <- E.wtime ctx;
         E.file_close ctx f));
  Array.iter (fun t -> Alcotest.(check (float 1e-9)) "synchronized" finish.(0) t) finish

let test_file_io_bandwidth_model () =
  let time_of platform =
    (E.run ~platform ~impl ~nranks:4 (fun ctx ->
         let f = E.file_open ctx (E.comm_world ctx) in
         E.file_write_all ctx f ~dt:D.Double ~count:10_000_000;
         E.file_close ctx f))
      .E.elapsed
  in
  (* platform C's local SSD (2 GB/s) is much slower than A's Lustre *)
  Alcotest.(check bool) "ssd slower than lustre" true
    (time_of Spec.platform_c > 2.0 *. time_of Spec.platform_a)

let test_scan_family () =
  let res =
    run ~nranks:8 (fun ctx ->
        let w = E.comm_world ctx in
        E.scan ctx w ~dt:D.Double ~count:4 ~op:Op.Sum;
        E.exscan ctx w ~dt:D.Double ~count:4 ~op:Op.Sum;
        E.reduce_scatter ctx w ~dt:D.Double ~count:16 ~op:Op.Sum)
  in
  Alcotest.(check int) "three calls per rank" 24 res.E.total_calls;
  Alcotest.(check bool) "time charged" true (res.E.elapsed > 0.0)

let test_alltoallv_validates_counts () =
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Engine.alltoallv: send_counts size mismatch") (fun () ->
      ignore
        (run ~nranks:2 (fun ctx ->
             E.alltoallv ctx (E.comm_world ctx) ~dt:D.Int ~send_counts:[| 1 |])))

let test_comm_split () =
  ignore
    (run ~nranks:8 (fun ctx ->
         let r = E.rank ctx in
         let sub = E.comm_split ctx (E.comm_world ctx) ~color:(r mod 2) ~key:r in
         Alcotest.(check int) "subgroup size" 4 (E.comm_size ctx sub);
         Alcotest.(check int) "subgroup rank" (r / 2) (E.comm_rank ctx sub);
         (* collectives work on the sub-communicator *)
         E.allreduce ctx sub ~dt:D.Double ~count:1 ~op:Op.Sum;
         E.barrier ctx sub;
         E.comm_free ctx sub))

let test_comm_split_by_key_order () =
  ignore
    (run ~nranks:4 (fun ctx ->
         let r = E.rank ctx in
         (* reversed keys reverse the sub-ranks *)
         let sub = E.comm_split ctx (E.comm_world ctx) ~color:0 ~key:(-r) in
         Alcotest.(check int) "reversed" (3 - r) (E.comm_rank ctx sub)))

let test_comm_dup () =
  ignore
    (run ~nranks:4 (fun ctx ->
         let d = E.comm_dup ctx (E.comm_world ctx) in
         Alcotest.(check int) "same size" 4 (E.comm_size ctx d);
         Alcotest.(check bool) "fresh id" true (E.comm_id ctx d <> E.comm_id ctx (E.comm_world ctx));
         E.barrier ctx d))

let test_collective_mismatch_detected () =
  let act () =
    ignore
      (run ~nranks:2 (fun ctx ->
           if E.rank ctx = 0 then E.barrier ctx (E.comm_world ctx)
           else E.allreduce ctx (E.comm_world ctx) ~dt:D.Int ~count:1 ~op:Op.Sum))
  in
  match act () with
  | () -> Alcotest.fail "mismatch not detected"
  | exception E.Collective_mismatch _ -> ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_deadlock_unmatched_recv () =
  match
    run ~nranks:2 (fun ctx -> if E.rank ctx = 0 then E.recv ctx ~src:1 ~tag:1 ~dt:D.Int ~count:1)
  with
  | _ -> Alcotest.fail "deadlock not detected"
  | exception E.Deadlock msg ->
      Alcotest.(check bool) "names the blocked rank" true (contains msg "rank 0")

let test_deadlock_circular_rendezvous () =
  (* both ranks issue rendezvous-size blocking sends head-to-head *)
  let act () =
    run ~nranks:2 (fun ctx ->
        let peer = 1 - E.rank ctx in
        E.send ctx ~dest:peer ~tag:1 ~dt:D.Double ~count:1_000_000;
        E.recv ctx ~src:peer ~tag:1 ~dt:D.Double ~count:1_000_000)
  in
  match act () with
  | _ -> Alcotest.fail "circular rendezvous should deadlock"
  | exception E.Deadlock _ -> ()

let test_eager_head_to_head_completes () =
  (* the same pattern below the eager threshold must complete *)
  ignore
    (run ~nranks:2 (fun ctx ->
         let peer = 1 - E.rank ctx in
         E.send ctx ~dest:peer ~tag:1 ~dt:D.Byte ~count:16;
         E.recv ctx ~src:peer ~tag:1 ~dt:D.Byte ~count:16))

let ring_program ctx =
  let r = E.rank ctx and n = E.size ctx in
  for _ = 1 to 5 do
    E.compute ctx kernel;
    let rq = E.irecv ctx ~src:((r + n - 1) mod n) ~tag:2 ~dt:D.Double ~count:500 in
    E.send ctx ~dest:((r + 1) mod n) ~tag:2 ~dt:D.Double ~count:500;
    E.wait ctx rq;
    E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:1 ~op:Op.Sum
  done

let test_determinism () =
  let a = run ~seed:5 ~nranks:8 ring_program in
  let b = run ~seed:5 ~nranks:8 ring_program in
  Alcotest.(check (float 0.0)) "same elapsed" a.E.elapsed b.E.elapsed;
  Alcotest.(check bool) "same per-rank clocks" true (a.E.per_rank_elapsed = b.E.per_rank_elapsed);
  let c = run ~seed:6 ~nranks:8 ring_program in
  (* counter noise differs across seeds even though structure is equal *)
  Alcotest.(check bool) "same call count across seeds" true (a.E.total_calls = c.E.total_calls)

let test_clock_monotonic () =
  ignore
    (run ~nranks:4 (fun ctx ->
         let last = ref 0.0 in
         let check () =
           if E.wtime ctx < !last then Alcotest.fail "clock went backwards";
           last := E.wtime ctx
         in
         for _ = 1 to 3 do
           E.compute ctx kernel;
           check ();
           let rq = E.irecv ctx ~src:((E.rank ctx + 3) mod 4) ~tag:2 ~dt:D.Int ~count:10 in
           check ();
           E.send ctx ~dest:((E.rank ctx + 1) mod 4) ~tag:2 ~dt:D.Int ~count:10;
           check ();
           E.wait ctx rq;
           check ();
           E.barrier ctx (E.comm_world ctx);
           check ()
         done))

let test_hook_sees_all_calls () =
  let calls = ref [] in
  let hook =
    {
      E.on_event = (fun ~rank ~papi:_ ~call -> calls := (rank, Call.name call) :: !calls);
      per_event_overhead = 0.0;
    }
  in
  ignore
    (run ~hook ~nranks:2 (fun ctx ->
         if E.rank ctx = 0 then E.send ctx ~dest:1 ~tag:1 ~dt:D.Int ~count:1
         else E.recv ctx ~src:0 ~tag:1 ~dt:D.Int ~count:1;
         E.barrier ctx (E.comm_world ctx)));
  let names = List.map snd !calls in
  Alcotest.(check bool) "send seen" true (List.mem "MPI_Send" names);
  Alcotest.(check bool) "recv seen" true (List.mem "MPI_Recv" names);
  Alcotest.(check int) "2 barriers" 2
    (List.length (List.filter (fun n -> n = "MPI_Barrier") names))

let test_hook_overhead_charged () =
  let base = run ~nranks:2 ring_program in
  let hook = { E.on_event = (fun ~rank:_ ~papi:_ ~call:_ -> ()); per_event_overhead = 1e-4 } in
  let hooked = run ~hook ~nranks:2 ring_program in
  Alcotest.(check bool) "instrumentation slows the run" true
    (hooked.E.elapsed > base.E.elapsed +. 1e-4)

let test_total_calls_counted () =
  let res = run ~nranks:4 ring_program in
  (* per rank per iteration: irecv + send + wait + allreduce = 4; 5 iters *)
  Alcotest.(check int) "call count" (4 * 5 * 4) res.E.total_calls

let test_estimate_p2p () =
  let est bytes = E.estimate_p2p_seconds ~platform ~impl ~same_node:false ~bytes in
  Alcotest.(check bool) "monotone in volume" true (est 1_000_000 > est 100);
  let below = est impl.Impl.eager_threshold_bytes in
  let above = est (impl.Impl.eager_threshold_bytes + 1) in
  Alcotest.(check bool) "rendezvous step" true
    (above -. below > impl.Impl.rendezvous_extra_s *. 0.9);
  Alcotest.(check bool) "intra-node cheaper" true
    (E.estimate_p2p_seconds ~platform ~impl ~same_node:true ~bytes:1000 < est 1000)

let test_nonblocking_collectives () =
  (* computation overlaps an in-flight iallreduce; the wait then costs
     nothing extra because everyone has long arrived *)
  let res =
    run ~nranks:4 (fun ctx ->
        let w = E.comm_world ctx in
        let r1 = E.iallreduce ctx w ~dt:D.Double ~count:1000 ~op:Op.Sum in
        E.compute ctx kernel;
        E.wait ctx r1;
        let r2 = E.ibarrier ctx w in
        let r3 = E.ibcast ctx w ~root:0 ~dt:D.Int ~count:16 in
        E.waitall ctx [ r2; r3 ])
  in
  Alcotest.(check bool) "completed" true (res.E.elapsed > 0.0);
  Alcotest.(check int) "five calls per rank" 20 res.E.total_calls

let test_nonblocking_collective_overlap_pays_off () =
  (* blocking: the barrier serializes before the compute; non-blocking:
     compute proceeds while the collective is in flight *)
  let blocking =
    (run ~nranks:2 (fun ctx ->
         E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:500_000 ~op:Op.Sum;
         E.compute ctx (K.compute_bound ~label:"k" ~flops:1e8 ~div_frac:0.0)))
      .E.elapsed
  in
  let nonblocking =
    (run ~nranks:2 (fun ctx ->
         let r = E.iallreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:500_000 ~op:Op.Sum in
         E.compute ctx (K.compute_bound ~label:"k" ~flops:1e8 ~div_frac:0.0);
         E.wait ctx r))
      .E.elapsed
  in
  Alcotest.(check bool) "overlap helps" true (nonblocking < blocking)

let test_multiple_inflight_collectives_ordered () =
  (* two ibarriers outstanding at once; completion times are ordered *)
  ignore
    (run ~nranks:3 (fun ctx ->
         let w = E.comm_world ctx in
         let r1 = E.ibarrier ctx w in
         let r2 = E.ibarrier ctx w in
         E.wait ctx r2;
         E.wait ctx r1))

let test_unreceived_messages_reported () =
  (* a send without a matching receive is flagged in the result *)
  let res =
    run ~nranks:2 (fun ctx ->
        if E.rank ctx = 0 then E.send ctx ~dest:1 ~tag:1 ~dt:D.Byte ~count:4)
  in
  Alcotest.(check int) "one stranded message" 1 res.E.unreceived_messages;
  let clean = run ~nranks:2 ring_program in
  Alcotest.(check int) "clean programs strand nothing" 0 clean.E.unreceived_messages

let test_invalid_nranks () =
  Alcotest.check_raises "zero ranks" (Invalid_argument "Engine.run: nranks must be positive")
    (fun () -> ignore (run ~nranks:0 (fun _ -> ())))

(* Random matched communication patterns never deadlock and always
   complete: pick a random permutation; every rank sends to its image and
   receives from its preimage, with random sizes/tags, plus random
   collectives interleaved at the same program points on every rank. *)
let test_random_matched_patterns () =
  let rng = Rng.create 77 in
  for _trial = 1 to 40 do
    let n = 2 + Rng.int rng 7 in
    let perm = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    let inverse = Array.make n 0 in
    Array.iteri (fun i v -> inverse.(v) <- i) perm;
    let rounds = 1 + Rng.int rng 4 in
    let sizes = Array.init rounds (fun _ -> 1 + Rng.int rng 50_000) in
    let colls = Array.init rounds (fun _ -> Rng.int rng 3) in
    let res =
      run ~nranks:n (fun ctx ->
          let r = E.rank ctx in
          for k = 0 to rounds - 1 do
            let rq = E.irecv ctx ~src:inverse.(r) ~tag:k ~dt:D.Byte ~count:sizes.(k) in
            E.send ctx ~dest:perm.(r) ~tag:k ~dt:D.Byte ~count:sizes.(k);
            E.wait ctx rq;
            match colls.(k) with
            | 0 -> E.barrier ctx (E.comm_world ctx)
            | 1 -> E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:4 ~op:Op.Sum
            | _ -> E.bcast ctx (E.comm_world ctx) ~root:(k mod n) ~dt:D.Int ~count:32
          done)
    in
    Alcotest.(check bool) "progressed" true (res.E.elapsed > 0.0)
  done

let suite =
  [
    ("rank/size/comm accessors", `Quick, test_rank_and_size);
    ("compute advances clock and counters", `Quick, test_compute_advances_clock);
    ("sleep advances clock only", `Quick, test_sleep_no_counters);
    ("eager send completes immediately, recv waits", `Quick, test_eager_send_recv);
    ("rendezvous send blocks until recv posts", `Quick, test_rendezvous_send_blocks);
    ("isend/irecv overlap computation", `Quick, test_isend_irecv_wait);
    ("waitall over mixed requests", `Quick, test_waitall);
    ("FIFO matching per channel", `Quick, test_fifo_matching_per_channel);
    ("tag selectivity", `Quick, test_tag_selectivity);
    ("any_source / any_tag wildcards", `Quick, test_any_source_and_any_tag);
    ("sendrecv avoids head-to-head deadlock", `Quick, test_sendrecv_exchange);
    ("barrier synchronizes", `Quick, test_barrier_synchronizes);
    ("allreduce finishes all ranks together", `Quick, test_allreduce_uniform_finish);
    ("collective cost grows with size and ranks", `Quick, test_collective_cost_grows);
    ("gather/scatter/allgather/alltoall(v)/reduce", `Quick, test_gather_scatter_allgather_alltoall);
    ("scan/exscan/reduce_scatter", `Quick, test_scan_family);
    ("MPI-IO basic operations", `Quick, test_file_io);
    ("MPI-IO collective synchronization", `Quick, test_file_io_collective_sync);
    ("MPI-IO bandwidth model", `Quick, test_file_io_bandwidth_model);
    ("alltoallv validates counts", `Quick, test_alltoallv_validates_counts);
    ("comm_split groups and sub-collectives", `Quick, test_comm_split);
    ("comm_split orders by key", `Quick, test_comm_split_by_key_order);
    ("comm_dup", `Quick, test_comm_dup);
    ("collective mismatch detected", `Quick, test_collective_mismatch_detected);
    ("deadlock: unmatched recv", `Quick, test_deadlock_unmatched_recv);
    ("deadlock: circular rendezvous sends", `Quick, test_deadlock_circular_rendezvous);
    ("eager head-to-head completes", `Quick, test_eager_head_to_head_completes);
    ("determinism per seed", `Quick, test_determinism);
    ("per-rank clock monotonicity", `Quick, test_clock_monotonic);
    ("hook sees every call", `Quick, test_hook_sees_all_calls);
    ("hook overhead charged to the clock", `Quick, test_hook_overhead_charged);
    ("total_calls accounting", `Quick, test_total_calls_counted);
    ("p2p time estimator", `Quick, test_estimate_p2p);
    ("non-blocking collectives", `Quick, test_nonblocking_collectives);
    ("non-blocking collective overlap", `Quick, test_nonblocking_collective_overlap_pays_off);
    ("multiple in-flight collectives", `Quick, test_multiple_inflight_collectives_ordered);
    ("unreceived messages reported", `Quick, test_unreceived_messages_reported);
    ("invalid nranks rejected", `Quick, test_invalid_nranks);
    ("random matched patterns never deadlock", `Slow, test_random_matched_patterns);
  ]
