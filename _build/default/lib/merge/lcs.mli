(** Longest common subsequence and insert/delete edit distance, used by the
    main-rule merge (Section 2.6.2).

    Main rules after Sequitur compression are short (tens to a few hundred
    entries), so a quadratic DP is ample.  A safety valve degrades
    gracefully on pathological inputs: above the cell budget, {!pairs}
    returns no matches (the merge then simply concatenates, which is
    correct, just less compact). *)

val length : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** Length of an LCS. *)

val pairs : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> (int * int) list
(** Matched index pairs [(i, j)] of one LCS, strictly increasing in both
    components. *)

val indel_distance : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** Minimum insertions+deletions turning one array into the other:
    [n + m - 2 * lcs]. *)

val normalized_distance : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> float
(** {!indel_distance} / (n + m); 0 for identical, 1 for disjoint.  Two
    empty arrays have distance 0. *)
