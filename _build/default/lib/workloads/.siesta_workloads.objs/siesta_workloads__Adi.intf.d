lib/workloads/adi.mli: Siesta_mpi
