lib/workloads/npb_bt.mli: Siesta_mpi
