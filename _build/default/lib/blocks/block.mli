(** The 11 predefined code blocks of Figure 2.

    Computation proxies are non-negative linear combinations of these
    blocks.  Each block has a per-unit work signature chosen to move the
    six metrics in a distinct direction:

    - 1: memory-operand integer add — high IPC, LST-heavy;
    - 2: register add chain — high IPC, low LST/INS;
    - 3: memory-operand double divide — low IPC;
    - 4: register divide chain — low IPC, low LST/INS;
    - 5: data-dependent branch loop over adds — mispredictions at high IPC;
    - 6: data-dependent branch loop over divides — mispredictions, low IPC;
    - 7: strided store sweep of 2x the L1 — pure L1 misses;
    - 8: miss sweep with adds — misses at high IPC;
    - 9: miss sweep with divides — misses at low IPC;
    - 10: empty counting loop with a memory induction variable — BR_CN
      with LST;
    - 11: register counting loop — the wrapper whose iterations also pay
      for the per-repetition loop overhead of blocks 1–9 (hence the
      QP constraint x11 >= x1 + ... + x9).

    A combination [x] executes block [j] [x.(j)] times; blocks 10 and 11
    interpret [x] as their trip count. *)

type t = {
  id : int;  (** 1-based, matching Figure 2 *)
  name : string;
  description : string;
  work : Siesta_platform.Cpu.work;  (** per unit (one repetition / trip) *)
  c_source : string;  (** C body text for the generated proxy-app *)
}

val count : int
(** 11. *)

val all : t array
(** In id order; [all.(j)] has id j+1. *)

val work_of_combination : float array -> Siesta_platform.Cpu.work
(** Total work of a combination (length {!count}); a rounded version of
    the QP solution.  Fractional repetitions are allowed and priced
    proportionally (the engine integrates work, not syntax). *)

val works_of_combination : float array -> Siesta_platform.Cpu.work list
(** Per-block scaled work units (blocks with zero repetitions omitted).
    Executing these one by one prices the combination {e additively} —
    cycles are exactly linear under scaling of a single block, so the
    result matches the QP's additive model [B x]; pricing the summed work
    instead would let one block's instruction slack hide another block's
    load/store bound. *)

val validate_combination : float array -> (unit, string) result
(** Checks length, non-negativity and the loop-overhead constraint
    [x11 >= sum(x1..x9)] up to rounding slack. *)
