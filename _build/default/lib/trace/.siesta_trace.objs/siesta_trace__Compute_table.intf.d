lib/trace/compute_table.mli: Siesta_perf
