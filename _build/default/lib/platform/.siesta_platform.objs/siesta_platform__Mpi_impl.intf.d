lib/platform/mpi_impl.mli:
