(* Supplementary study: how the merged-grammar size scales with the
   process count.  The motivation of Section 2.6 — without inter-process
   merging, grammar size grows linearly with P; with the global terminal
   table, shared rules and rank-listed mains it should grow far slower
   (SPMD programs add only boundary-class variety).  Also reports the
   tree-merge depth (log2 P) the paper's distributed merge would need. *)

open Exp_common
module Merged = Siesta_merge.Merged
module Terminal_table = Siesta_merge.Terminal_table
module MPipe = Siesta_merge.Pipeline

let run () =
  heading "Supplementary: merged-grammar size vs process count";
  List.iter
    (fun (workload, scales) ->
      let rows =
        List.map
          (fun nranks ->
            let s = Pipeline.spec ~workload ~nranks () in
            let traced = Pipeline.trace s in
            let streams =
              Array.init nranks (Recorder.events traced.Pipeline.recorder)
            in
            let table = Terminal_table.build streams in
            let merged = MPipe.merge_streams ~nranks streams in
            let main_entries =
              Array.fold_left (fun acc m -> acc + List.length m) 0 merged.Merged.mains
            in
            [
              string_of_int nranks;
              string_of_int (Terminal_table.size table);
              string_of_int (Array.length merged.Merged.rules);
              string_of_int (Array.length merged.Merged.mains);
              string_of_int main_entries;
              Siesta_util.Bytes_fmt.to_string (Merged.serialized_bytes merged);
              string_of_int (Terminal_table.merge_steps table);
            ])
          scales
      in
      Printf.printf "\n%s:\n" workload;
      table
        ~header:[ "P"; "terminals"; "rules"; "main clusters"; "main entries"; "size"; "merge depth" ]
        ~rows)
    [ ("MG", [ 16; 64; 256 ]); ("BT", [ 16; 64; 256 ]); ("Sedov", [ 16; 64; 256 ]) ];
  print_endline
    "\nSPMD codes (MG, BT) grow by boundary classes only; FLASH's per-rank\n\
     irregularity makes its mains grow with P — the same contrast Table 3's\n\
     size_C column shows."
