(** Shared scaffolding for the self-contained HTML viewers.

    The timeline viewer ({!Siesta_analysis.Timeline_html}), the run-trend
    dashboard ({!Siesta_ledger.Trend_html}) and the sweep dashboard all
    obey the same design constraints: one file, zero external requests,
    the data embedded as plain JSON in a
    [<script type="application/json">] block (scrapeable by other
    tools), and a small hand-written canvas renderer.  This module owns
    the escaping, the data-block embedding, the page skeleton and the
    generic axis/line-plot JS so the viewers keep only their bespoke
    rendering logic. *)

val json_escape : string -> string
(** Escape for inclusion between double quotes in an embedded JSON
    document.  ['<'] is emitted as the u003c escape so a literal
    close-script tag can never terminate the data block. *)

val json_float : float -> string
(** JSON number spelling; [nan]/[inf] print as [null] (they have no
    JSON spelling), integral values without a fraction. *)

val html_escape : string -> string
(** Escape for HTML text and attribute contexts (ampersand, angle
    brackets, double quote). *)

val data_block : id:string -> string -> string
(** [data_block ~id json] is the
    [<script type="application/json" id=...>] element other tools grep
    for.  [json] must already be a complete document (its strings
    escaped with {!json_escape}). *)

val page : title:string -> css:string -> body:string -> string
(** Complete HTML document: doctype, head with [title] (escaped) and an
    inline [<style>], then [body] verbatim. *)

val chart_js : string
(** Static canvas line-plot machinery, installed as a [SiestaChart]
    global: [SiestaChart.linePlot(canvasId, legendId, series, opts)]
    with [series = [{name, points: [[x, y|null], ...]}]] and
    [opts = {yLabel, logX, xTicks, xTickPrefix, xTickFmt}].  [logX]
    plots x on a log2 axis (the sweep dashboard's factor schedule);
    [xTicks] pins tick marks to explicit data values.  Embed once per
    page before any viewer script that calls it. *)

val dashboard_css : string
(** The stylesheet shared by the dashboard-style viewers (charts,
    legend chips, record table). *)
