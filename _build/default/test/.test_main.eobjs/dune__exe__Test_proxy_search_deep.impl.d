test/test_proxy_search_deep.ml: Alcotest Array List Printf QCheck QCheck_alcotest Result Siesta_blocks Siesta_perf Siesta_platform Siesta_synth Siesta_util
