type t = int array (* sorted ascending, no duplicates *)

let singleton r = [| r |]

let of_list l = Array.of_list (List.sort_uniq compare l)

let union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j k =
    if i = la && j = lb then k
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else if i = la || b.(j) < a.(i) then begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
    else begin
      out.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
  in
  let k = go 0 0 0 in
  Array.sub out 0 k

let mem t r =
  let rec bs lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if t.(mid) = r then true else if t.(mid) < r then bs (mid + 1) hi else bs lo mid
    end
  in
  bs 0 (Array.length t)

let cardinal = Array.length
let to_list = Array.to_list
let equal (a : t) b = a = b

type shape =
  | All of int
  | Range of int * int
  | Strided of int * int * int
  | Explicit of int list

let shape ~nranks t =
  let n = Array.length t in
  if n = 0 then Explicit []
  else if n = 1 then Range (t.(0), t.(0))
  else begin
    let lo = t.(0) and hi = t.(n - 1) in
    if hi - lo + 1 = n then (if lo = 0 && n = nranks then All nranks else Range (lo, hi))
    else begin
      let step = t.(1) - t.(0) in
      let strided = step > 1 && n >= 3 in
      let rec ok i = i >= n || (t.(i) - t.(i - 1) = step && ok (i + 1)) in
      if strided && ok 2 then Strided (lo, hi, step) else Explicit (Array.to_list t)
    end
  end

let serialized_bytes t =
  match shape ~nranks:max_int t with
  | All _ | Range _ | Strided _ -> 8
  | Explicit l -> 4 * List.length l

let pp ppf t =
  match shape ~nranks:max_int t with
  | All n -> Format.fprintf ppf "[0..%d]" (n - 1)
  | Range (lo, hi) -> if lo = hi then Format.fprintf ppf "[%d]" lo else Format.fprintf ppf "[%d..%d]" lo hi
  | Strided (lo, hi, s) -> Format.fprintf ppf "[%d..%d:%d]" lo hi s
  | Explicit l ->
      Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int l))
