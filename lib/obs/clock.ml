let epoch_unix_s = Unix.gettimeofday ()

(* Last reading handed out, as seconds-since-start.  [float Atomic.t]
   boxes on store, but the CAS loop only stores when time advanced past
   the previous reading observed by *some* domain, i.e. almost every
   call; the allocation is one boxed float per reading — noise next to
   the [gettimeofday] syscall itself. *)
let last : float Atomic.t = Atomic.make 0.0

let rec clamp raw =
  let prev = Atomic.get last in
  if raw <= prev then prev
  else if Atomic.compare_and_set last prev raw then raw
  else clamp raw

let now_s () = clamp (Unix.gettimeofday () -. epoch_unix_s)
let now_us () = 1e6 *. now_s ()

let wall f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)
