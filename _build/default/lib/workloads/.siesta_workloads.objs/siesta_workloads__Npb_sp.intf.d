lib/workloads/npb_sp.mli: Siesta_mpi
