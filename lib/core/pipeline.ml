module Engine = Siesta_mpi.Engine
module Recorder = Siesta_trace.Recorder
module Registry = Siesta_workloads.Registry
module Merged = Siesta_merge.Merged
module Merge_pipeline = Siesta_merge.Pipeline
module Proxy_ir = Siesta_synth.Proxy_ir
module Spec_p = Siesta_platform.Spec
module Mpi_impl = Siesta_platform.Mpi_impl

type spec = {
  workload : Registry.t;
  nranks : int;
  iters : int option;
  platform : Spec_p.t;
  impl : Mpi_impl.t;
  seed : int;
  cluster_threshold : float;
}

let default_spec =
  {
    workload = Registry.find "CG";
    nranks = 64;
    iters = None;
    platform = Spec_p.platform_a;
    impl = Mpi_impl.openmpi;
    seed = 42;
    cluster_threshold = 0.05;
  }

let spec ?iters ?(platform = Spec_p.platform_a) ?(impl = Mpi_impl.openmpi) ?(seed = 42)
    ?(cluster_threshold = 0.05) ~workload ~nranks () =
  let w = Registry.find workload in
  if not (w.Registry.valid_procs nranks) then
    invalid_arg (Printf.sprintf "%s cannot run on %d processes" w.Registry.name nranks);
  { workload = w; nranks; iters; platform; impl; seed; cluster_threshold }

type traced = {
  run_spec : spec;
  original : Engine.result;
  instrumented : Engine.result;
  recorder : Recorder.t;
  overhead : float;
}

let program_of s = s.workload.Registry.program ~nranks:s.nranks ~iters:s.iters

let trace s =
  let program = program_of s in
  let original =
    Engine.run ~platform:s.platform ~impl:s.impl ~nranks:s.nranks ~seed:s.seed program
  in
  let recorder =
    Recorder.create ~nranks:s.nranks ~cluster_threshold:s.cluster_threshold ()
  in
  let instrumented =
    Engine.run ~platform:s.platform ~impl:s.impl ~nranks:s.nranks ~seed:s.seed
      ~hook:(Recorder.hook recorder) program
  in
  let overhead =
    if original.Engine.elapsed = 0.0 then 0.0
    else (instrumented.Engine.elapsed -. original.Engine.elapsed) /. original.Engine.elapsed
  in
  { run_spec = s; original; instrumented; recorder; overhead }

type artifact = {
  traced : traced;
  merged : Merged.t;
  proxy : Proxy_ir.t;
  factor : float;
}

let synthesize ?(factor = 1.0) ?(rle = true) ?domains traced =
  let config = { Merge_pipeline.default_config with rle; domains } in
  let merged = Merge_pipeline.merge_recorder ~config traced.recorder in
  let proxy =
    Proxy_ir.synthesize ~platform:traced.run_spec.platform ~impl:traced.run_spec.impl ~factor
      ~merged
      ~compute_table:(Recorder.compute_table traced.recorder)
      ()
  in
  { traced; merged; proxy; factor }

let run_proxy artifact ~platform ~impl =
  Engine.run ~platform ~impl ~nranks:artifact.traced.run_spec.nranks
    ~seed:artifact.traced.run_spec.seed
    (Proxy_ir.program artifact.proxy)

let run_original s ~platform ~impl =
  Engine.run ~platform ~impl ~nranks:s.nranks ~seed:s.seed (program_of s)
