(* Final coverage pass: implementation-profile behaviour, non-blocking
   collectives through the baselines, report variants, and corner cases
   not reached by the earlier suites. *)

module E = Siesta_mpi.Engine
module Call = Siesta_mpi.Call
module D = Siesta_mpi.Datatype
module Op = Siesta_mpi.Op
module Spec = Siesta_platform.Spec
module Impl = Siesta_platform.Mpi_impl
module Event = Siesta_trace.Event
module Recorder = Siesta_trace.Recorder
module Trace_io = Siesta_trace.Trace_io
module Rank_list = Siesta_merge.Rank_list
module Scalabench = Siesta_baselines.Scalabench
module G = Siesta_grammar.Grammar
module Q = Siesta_grammar.Sequitur
module K = Siesta_perf.Kernel

let platform = Spec.platform_a

(* ------------------------------------------------------------------ *)
(* MPI implementation profiles *)

let test_impl_eager_thresholds_differ_behaviour () =
  (* a 6000-byte send is eager under mpich (8 KiB threshold) but
     rendezvous under openmpi (4 KiB): under openmpi the sender must block
     on the late receiver, under mpich it must not *)
  let sender_done impl =
    let t = ref 0.0 in
    ignore
      (E.run ~platform ~impl ~nranks:2 (fun ctx ->
           if E.rank ctx = 0 then begin
             E.send ctx ~dest:1 ~tag:0 ~dt:D.Byte ~count:6000;
             t := E.wtime ctx
           end
           else begin
             E.sleep ctx 0.05;
             E.recv ctx ~src:0 ~tag:0 ~dt:D.Byte ~count:6000
           end));
    !t
  in
  Alcotest.(check bool) "openmpi blocks (rendezvous)" true (sender_done Impl.openmpi > 0.05);
  Alcotest.(check bool) "mpich does not (eager)" true (sender_done Impl.mpich < 0.01)

let test_impl_collective_factors_visible () =
  (* mpich's alltoall factor (1.15) vs mvapich's (0.95) shows directly *)
  let time impl =
    (E.run ~platform ~impl ~nranks:16 (fun ctx ->
         E.alltoall ctx (E.comm_world ctx) ~dt:D.Byte ~count:2000))
      .E.elapsed
  in
  Alcotest.(check bool) "mpich alltoall slower than mvapich" true
    (time Impl.mpich > time Impl.mvapich)

(* ------------------------------------------------------------------ *)
(* Non-blocking collectives through the stack *)

let nbc_program ctx =
  for _ = 1 to 3 do
    let r =
      E.iallreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:128 ~op:Op.Sum
    in
    E.compute ctx (K.compute_bound ~label:"o" ~flops:5e5 ~div_frac:0.0);
    E.wait ctx r
  done

let traced_nbc () =
  let recorder = Recorder.create ~nranks:4 () in
  ignore
    (E.run ~platform ~impl:Impl.openmpi ~nranks:4 ~hook:(Recorder.hook recorder) nbc_program);
  recorder

let test_nbc_recorded_with_pooled_requests () =
  let recorder = traced_nbc () in
  let evs = Recorder.events recorder 0 in
  let iallreduces =
    Array.to_list evs
    |> List.filter_map (function Event.Iallreduce { req; _ } -> Some req | _ -> None)
  in
  Alcotest.(check (list int)) "pool slot 0 reused each iteration" [ 0; 0; 0 ] iallreduces

let test_nbc_event_roundtrip_through_trace_io () =
  let recorder = traced_nbc () in
  let t = Trace_io.of_recorder recorder in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  Alcotest.(check bool) "streams equal" true (t.Trace_io.streams = t'.Trace_io.streams)

let test_scalabench_converts_nbc_to_blocking () =
  let recorder = traced_nbc () in
  let sb =
    Scalabench.synthesize ~platform ~workload:"nbc" ~nranks:4
      ~streams:(Array.init 4 (Recorder.events recorder))
      ~compute_table:(Recorder.compute_table recorder)
  in
  (* replay must run, and its elapsed time exceeds the original's: the
     conversion to blocking allreduce loses the overlap *)
  let original = (E.run ~platform ~impl:Impl.openmpi ~nranks:4 nbc_program).E.elapsed in
  let replayed =
    (E.run ~platform ~impl:Impl.openmpi ~nranks:4 (Scalabench.program sb)).E.elapsed
  in
  Alcotest.(check bool) "overlap lost in the baseline" true (replayed >= original)

(* ------------------------------------------------------------------ *)
(* Misc corners *)

let test_rank_list_serialized_bytes () =
  let cheap = Rank_list.of_list (List.init 64 Fun.id) in
  let strided = Rank_list.of_list (List.init 16 (fun i -> 2 * i)) in
  let general = Rank_list.of_list [ 0; 1; 5; 17; 40 ] in
  Alcotest.(check int) "range is 8 bytes" 8 (Rank_list.serialized_bytes cheap);
  Alcotest.(check int) "stride is 8 bytes" 8 (Rank_list.serialized_bytes strided);
  Alcotest.(check int) "general pays per member" 20 (Rank_list.serialized_bytes general)

let test_dot_export_empty_grammar () =
  let g = Q.of_seq [||] in
  let dot = G.to_dot g in
  Alcotest.(check bool) "still a digraph" true (String.length dot > 20)

let test_report_with_scaling_factor () =
  let spec = Siesta.Pipeline.spec ~iters:3 ~workload:"IS" ~nranks:8 () in
  let traced = Siesta.Pipeline.trace spec in
  let art = Siesta.Pipeline.synthesize ~factor:5.0 traced in
  let report = Siesta.Report.generate art in
  let contains needle =
    let n = String.length report and m = String.length needle in
    let rec go i = i + m <= n && (String.sub report i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "factor shown" true (contains "scaling factor: 5");
  Alcotest.(check bool) "estimate shown" true (contains "x5 =")

let test_engine_result_clean_for_workloads () =
  (* no workload leaves stranded messages *)
  List.iter
    (fun name ->
      let w = Siesta_workloads.Registry.find name in
      let res =
        E.run ~platform ~impl:Impl.openmpi ~nranks:16
          (w.Siesta_workloads.Registry.program ~nranks:16 ~iters:(Some 2))
      in
      Alcotest.(check int) (name ^ " strands nothing") 0 res.E.unreceived_messages)
    [ "BT"; "CG"; "MG"; "Sweep3d"; "Sod"; "BT-IO" ]

let test_mixed_blocking_and_nonblocking_barrier_generations () =
  (* the per-comm sequence numbers keep two barrier generations apart even
     when ranks interleave blocking and non-blocking joins *)
  ignore
    (E.run ~platform ~impl:Impl.openmpi ~nranks:2 (fun ctx ->
         let w = E.comm_world ctx in
         if E.rank ctx = 0 then begin
           let r = E.ibarrier ctx w in
           E.barrier ctx w;
           E.wait ctx r
         end
         else begin
           let r1 = E.ibarrier ctx w in
           let r2 = E.ibarrier ctx w in
           E.waitall ctx [ r1; r2 ]
         end))

let suite =
  [
    ("impl profiles: eager thresholds behave", `Quick, test_impl_eager_thresholds_differ_behaviour);
    ("impl profiles: collective factors visible", `Quick, test_impl_collective_factors_visible);
    ("NBC: pooled request numbering", `Quick, test_nbc_recorded_with_pooled_requests);
    ("NBC: trace_io roundtrip", `Quick, test_nbc_event_roundtrip_through_trace_io);
    ("NBC: baseline loses overlap", `Quick, test_scalabench_converts_nbc_to_blocking);
    ("rank-list export sizes", `Quick, test_rank_list_serialized_bytes);
    ("dot export of an empty grammar", `Quick, test_dot_export_empty_grammar);
    ("report with a scaling factor", `Quick, test_report_with_scaling_factor);
    ("workloads strand no messages", `Quick, test_engine_result_clean_for_workloads);
    ("mixed barrier generations ordered", `Quick, test_mixed_blocking_and_nonblocking_barrier_generations);
  ]
