module Call = Siesta_mpi.Call
module Engine = Siesta_mpi.Engine
module Papi = Siesta_perf.Papi
module Counters = Siesta_perf.Counters
module Sequitur = Siesta_grammar.Sequitur

type mode = Streamed | Boxed

(* Streamed per-rank state: the dense-code stream and the online Sequitur
   builder it feeds.  The boxed [Event.t] values exist only transiently
   inside [on_event]; what persists is the off-heap code buffer plus the
   grammar under construction, so GC-visible memory stays proportional to
   grammar size. *)
type stream_state = { codes : Soa.buf; seq : Sequitur.t }

type rank_state = {
  mutable events_rev : Event.t list;  (* Boxed mode only *)
  stream : stream_state option;  (* Streamed mode only *)
  mutable n_events : int;
  mutable raw_bytes : int;
  req_pool : Pools.t;
  req_map : (int, int) Hashtbl.t;  (* engine request id -> pooled id *)
  comm_pool : Pools.t;
  comm_map : (int, int) Hashtbl.t;  (* engine comm id -> pooled id *)
  file_pool : Pools.t;
  file_map : (int, int) Hashtbl.t;  (* engine file id -> pooled id *)
}

type t = {
  nranks : int;
  per_event_overhead : float;
  relative_ranks : bool;
  mode : mode;
  intern : Soa.Intern.t;  (* shared across ranks; codes are process-global *)
  table : Compute_table.t;
  ranks : rank_state array;
}

(* Bytes a real tracer would write for one computation record: six 8-byte
   counters plus a 16-byte header. *)
let compute_record_bytes = 64

let create ~nranks ?(cluster_threshold = 0.05) ?(per_event_overhead = 0.6e-6)
    ?(relative_ranks = true) ?(mode = Streamed) () =
  let make_rank () =
    let comm_pool = Pools.create () in
    let comm_map = Hashtbl.create 8 in
    (* MPI_COMM_WORLD pre-exists: engine comm 0 -> pool number 0. *)
    Hashtbl.replace comm_map 0 (Pools.acquire comm_pool);
    {
      events_rev = [];
      stream =
        (match mode with
        | Boxed -> None
        | Streamed -> Some { codes = Soa.create (); seq = Sequitur.create ~rle:true () });
      n_events = 0;
      raw_bytes = 0;
      req_pool = Pools.create ();
      req_map = Hashtbl.create 16;
      comm_pool;
      comm_map;
      file_pool = Pools.create ();
      file_map = Hashtbl.create 4;
    }
  in
  {
    nranks;
    per_event_overhead;
    relative_ranks;
    mode;
    intern = Soa.Intern.create ();
    table = Compute_table.create ~threshold:cluster_threshold;
    ranks = Array.init nranks (fun _ -> make_rank ());
  }

let rel_peer t ~rank peer =
  if peer = Call.any_source then peer
  else if t.relative_ranks then (peer - rank + t.nranks) mod t.nranks
  else peer

let encode_p2p t ~rank (p : Call.p2p) : Event.p2p =
  { rel_peer = rel_peer t ~rank p.peer; tag = p.tag; dt = p.dt; count = p.count; comm = 0 }

let pooled_comm st comm =
  match Hashtbl.find_opt st.comm_map comm with
  | Some id -> id
  | None ->
      (* A communicator we did not see created (should not happen): give
         it a stable pooled number anyway. *)
      let id = Pools.acquire st.comm_pool in
      Hashtbl.replace st.comm_map comm id;
      id

let acquire_req st engine_id =
  let id = Pools.acquire st.req_pool in
  Hashtbl.replace st.req_map engine_id id;
  id

let release_req st engine_id =
  match Hashtbl.find_opt st.req_map engine_id with
  | Some id ->
      Pools.release st.req_pool id;
      Hashtbl.remove st.req_map engine_id;
      id
  | None ->
      (* A wait on a request from a call the tracer did not see; encode a
         fresh number so the trace stays well-formed. *)
      let id = Pools.acquire st.req_pool in
      Pools.release st.req_pool id;
      id

let encode t ~rank (call : Call.t) : Event.t =
  let st = t.ranks.(rank) in
  match call with
  | Call.Send p -> Event.Send (encode_p2p t ~rank p)
  | Call.Recv p -> Event.Recv (encode_p2p t ~rank p)
  | Call.Isend (p, req) -> Event.Isend (encode_p2p t ~rank p, acquire_req st req)
  | Call.Irecv (p, req) -> Event.Irecv (encode_p2p t ~rank p, acquire_req st req)
  | Call.Wait req -> Event.Wait (release_req st req)
  | Call.Waitall reqs -> Event.Waitall (List.map (release_req st) reqs)
  | Call.Sendrecv { send; recv } ->
      Event.Sendrecv { send = encode_p2p t ~rank send; recv = encode_p2p t ~rank recv }
  | Call.Barrier { comm } -> Event.Barrier { comm = pooled_comm st comm }
  | Call.Bcast { comm; root; dt; count } ->
      Event.Bcast { comm = pooled_comm st comm; root; dt; count }
  | Call.Reduce { comm; root; dt; count; op } ->
      Event.Reduce { comm = pooled_comm st comm; root; dt; count; op }
  | Call.Allreduce { comm; dt; count; op } ->
      Event.Allreduce { comm = pooled_comm st comm; dt; count; op }
  | Call.Alltoall { comm; dt; count } -> Event.Alltoall { comm = pooled_comm st comm; dt; count }
  | Call.Alltoallv { comm; dt; send_counts } ->
      Event.Alltoallv { comm = pooled_comm st comm; dt; send_counts }
  | Call.Allgather { comm; dt; count } ->
      Event.Allgather { comm = pooled_comm st comm; dt; count }
  | Call.Gather { comm; root; dt; count } ->
      Event.Gather { comm = pooled_comm st comm; root; dt; count }
  | Call.Scatter { comm; root; dt; count } ->
      Event.Scatter { comm = pooled_comm st comm; root; dt; count }
  | Call.Scan { comm; dt; count; op } -> Event.Scan { comm = pooled_comm st comm; dt; count; op }
  | Call.Exscan { comm; dt; count; op } ->
      Event.Exscan { comm = pooled_comm st comm; dt; count; op }
  | Call.Reduce_scatter { comm; dt; count; op } ->
      Event.Reduce_scatter { comm = pooled_comm st comm; dt; count; op }
  | Call.Ibarrier { comm; req } ->
      Event.Ibarrier { comm = pooled_comm st comm; req = acquire_req st req }
  | Call.Ibcast { comm; root; dt; count; req } ->
      Event.Ibcast { comm = pooled_comm st comm; root; dt; count; req = acquire_req st req }
  | Call.Iallreduce { comm; dt; count; op; req } ->
      Event.Iallreduce { comm = pooled_comm st comm; dt; count; op; req = acquire_req st req }
  | Call.Comm_split { comm; color; key; newcomm } ->
      let c = pooled_comm st comm in
      let n = Pools.acquire st.comm_pool in
      Hashtbl.replace st.comm_map newcomm n;
      Event.Comm_split { comm = c; color; key; newcomm = n }
  | Call.Comm_dup { comm; newcomm } ->
      let c = pooled_comm st comm in
      let n = Pools.acquire st.comm_pool in
      Hashtbl.replace st.comm_map newcomm n;
      Event.Comm_dup { comm = c; newcomm = n }
  | Call.Comm_free { comm } ->
      let c = pooled_comm st comm in
      (match Hashtbl.find_opt st.comm_map comm with
      | Some id ->
          Pools.release st.comm_pool id;
          Hashtbl.remove st.comm_map comm
      | None -> ());
      Event.Comm_free { comm = c }
  | Call.File_open { comm; file } ->
      let c = pooled_comm st comm in
      let f = Pools.acquire st.file_pool in
      Hashtbl.replace st.file_map file f;
      Event.File_open { comm = c; file = f }
  | Call.File_close { file } ->
      let f = Option.value ~default:0 (Hashtbl.find_opt st.file_map file) in
      (match Hashtbl.find_opt st.file_map file with
      | Some id ->
          Pools.release st.file_pool id;
          Hashtbl.remove st.file_map file
      | None -> ());
      Event.File_close { file = f }
  | Call.File_write_all { file; dt; count } ->
      Event.File_write_all
        { file = Option.value ~default:0 (Hashtbl.find_opt st.file_map file); dt; count }
  | Call.File_read_all { file; dt; count } ->
      Event.File_read_all
        { file = Option.value ~default:0 (Hashtbl.find_opt st.file_map file); dt; count }
  | Call.File_write_at { file; dt; count } ->
      Event.File_write_at
        { file = Option.value ~default:0 (Hashtbl.find_opt st.file_map file); dt; count }
  | Call.File_read_at { file; dt; count } ->
      Event.File_read_at
        { file = Option.value ~default:0 (Hashtbl.find_opt st.file_map file); dt; count }

let push t st ev bytes =
  (match st.stream with
  | Some ss ->
      (* Streamed: intern to a dense code, append it off-heap, feed the
         online grammar.  The boxed [ev] becomes garbage immediately. *)
      let code = Soa.Intern.intern t.intern ev in
      Soa.append ss.codes code;
      Sequitur.push ss.seq code
  | None -> st.events_rev <- ev :: st.events_rev);
  st.n_events <- st.n_events + 1;
  st.raw_bytes <- st.raw_bytes + bytes

let on_event t ~rank ~papi ~call =
  let st = t.ranks.(rank) in
  let delta = Papi.read_delta papi in
  if delta.Counters.cyc > 0.0 then begin
    let cluster = Compute_table.classify t.table delta in
    push t st (Event.Compute cluster) compute_record_bytes
  end;
  push t st (encode t ~rank call) (Call.record_bytes call)

let hook t =
  {
    Engine.on_event = (fun ~rank ~papi ~call -> on_event t ~rank ~papi ~call);
    per_event_overhead = t.per_event_overhead;
  }

let mode t = t.mode

let events t rank =
  let st = t.ranks.(rank) in
  match st.stream with
  | None -> Array.of_list (List.rev st.events_rev)
  | Some ss ->
      let defs = Soa.Intern.defs t.intern in
      Array.init (Soa.length ss.codes) (fun i -> defs.(Soa.unsafe_get ss.codes i))

let event_defs t =
  match t.mode with
  | Streamed -> Soa.Intern.defs t.intern
  | Boxed -> invalid_arg "Recorder.event_defs: boxed-mode recorder"

let codes t rank =
  match t.ranks.(rank).stream with
  | Some ss -> ss.codes
  | None -> invalid_arg "Recorder.codes: boxed-mode recorder"

let online_grammars t =
  match t.mode with
  | Boxed -> invalid_arg "Recorder.online_grammars: boxed-mode recorder"
  | Streamed ->
      Array.map
        (fun st ->
          match st.stream with Some ss -> Sequitur.finalize ss.seq | None -> assert false)
        t.ranks

let compute_table t = t.table
let raw_trace_bytes t = Array.fold_left (fun acc st -> acc + st.raw_bytes) 0 t.ranks
let total_events t = Array.fold_left (fun acc st -> acc + st.n_events) 0 t.ranks
let nranks t = t.nranks
