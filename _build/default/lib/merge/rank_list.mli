(** Sets of process ranks attached to merged main-rule symbols
    (Section 2.6.2).

    After the LCS merge, every symbol of a merged main rule carries the set
    of ranks that execute it.  The code generator turns these sets into
    branch conditions, so the module also classifies a set's shape (all
    ranks / one contiguous interval / an arithmetic progression / general)
    to emit compact conditions. *)

type t

val singleton : int -> t
val of_list : int list -> t
val union : t -> t -> t
val mem : t -> int -> bool
val cardinal : t -> int
val to_list : t -> int list
(** Ascending order. *)

val equal : t -> t -> bool

(** Shape classification for branch generation. *)
type shape =
  | All of int  (** every rank in [0, n) — given the program's size n *)
  | Range of int * int  (** contiguous [lo..hi] *)
  | Strided of int * int * int  (** [lo..hi] step [s], at least 3 members *)
  | Explicit of int list

val shape : nranks:int -> t -> shape

val serialized_bytes : t -> int
(** Export-size contribution: interval/stride encodings are cheap, general
    sets pay per member. *)

val pp : Format.formatter -> t -> unit
