(** Monotonic-ish wall clock shared by spans, metrics and the bench
    drivers.

    OCaml's stdlib has no monotonic clock; this module is the
    [Mtime]-style fallback built on [Unix.gettimeofday]: timestamps are
    seconds since process start, clamped so they never run backwards
    across domains (a CAS loop on the last observed reading absorbs NTP
    steps).  One clock source for everything means bench numbers and
    Chrome-trace spans are directly comparable. *)

val now_s : unit -> float
(** Monotonic seconds since process start. *)

val now_us : unit -> float
(** Monotonic microseconds since process start (Chrome trace_event's
    native unit). *)

val epoch_unix_s : float
(** [Unix.gettimeofday] at process start — add to {!now_s} to recover an
    absolute wall-clock time. *)

val wall : (unit -> 'a) -> 'a * float
(** [wall f] runs [f] and returns its result with elapsed seconds. *)
