bench/exp_extrapolate.ml: Array Engine Exp_common List Mpi_impl Pipeline Printf Siesta_extrapolate Siesta_merge Siesta_synth Siesta_trace Spec String
