lib/trace/mpip_report.ml: Array Buffer Event Hashtbl List Option Printf Recorder
