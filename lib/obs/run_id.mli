(** Process-wide run identifier, used to join a run's telemetry streams
    after the fact: {!Log} stamps it into every line ([run=<prefix>]),
    {!Span} puts it in the Chrome trace's [otherData.run_id], {!publish}
    exposes it as a labeled metric, and the run ledger records it as the
    record's [id] field.

    The id is minted once per process (millisecond wall time + pid,
    16 lowercase hex chars).  [SIESTA_RUN_ID] overrides it, so a driver
    script can give several siesta invocations one shared id. *)

val get : unit -> string
(** The current run id (stable for the life of the process unless {!set}
    is called). *)

val set : string -> unit
(** Override the run id (tests, or embedding processes that already have
    a correlation id).  Empty/whitespace strings are ignored. *)

val short : unit -> string
(** First 8 characters — the form stamped into log lines. *)

val publish : unit -> unit
(** Register and bump the [run.id{id="<id>"}] counter so a metrics
    snapshot names the run it came from (no-op value-wise while the
    registry is disabled, but the counter is always registered). *)
