(** Small summary statistics used throughout the evaluation harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for arrays of length < 2. *)

val median : float array -> float
(** Median (does not modify its argument); 0 for an empty array. *)

val relative_error : actual:float -> reference:float -> float
(** [|actual - reference| / |reference|].  If [reference] is 0, returns 0
    when [actual] is also 0 and [infinity] otherwise. *)

val mean_relative_error : actual:float array -> reference:float array -> float
(** Mean of pairwise {!relative_error}; arrays must have equal length. *)

val percent : float -> float
(** Multiply by 100 (for printing error fractions as percentages). *)
