lib/synth/codegen_c.mli: Proxy_ir
