lib/blocks/block.ml: Array Printf Siesta_platform
