module Event = Siesta_trace.Event
module Compute_table = Siesta_trace.Compute_table
module Engine = Siesta_mpi.Engine
module Call = Siesta_mpi.Call
module Datatype = Siesta_mpi.Datatype
module Spec = Siesta_platform.Spec
module Cpu = Siesta_platform.Cpu
module Counters = Siesta_perf.Counters

exception Unsupported of string

type t = {
  nranks : int;
  streams : Event.t array array;  (* transformed per-rank streams *)
  sleeps : float array;  (* per computation cluster, seconds *)
}

let known_failure ~workload ~nranks =
  let w = String.lowercase_ascii workload in
  (w = "sp" && (nranks = 256 || nranks = 529))
  || w = "sod" || w = "sedov" || w = "stirturb"

(* histogram bin centre: [2^k, 2^(k+1)) -> 1.5 * 2^k *)
let quantize c =
  if c <= 2 then c
  else begin
    let k = int_of_float (Float.log2 (float_of_int c)) in
    3 * (1 lsl k) / 2
  end

let quantize_p2p (p : Event.p2p) = { p with Event.count = quantize p.Event.count }

(* Replay-side transformation of one rank's stream (see the interface for
   the rationale of each rewrite). *)
let transform stream =
  let out = ref [] in
  (* engine request slots we converted from Isend to Send: their waits
     must be dropped *)
  let converted = Hashtbl.create 16 in
  Array.iter
    (fun ev ->
      match (ev : Event.t) with
      | Event.Isend (p, slot) ->
          Hashtbl.replace converted slot ();
          out := Event.Send (quantize_p2p p) :: !out
      | Event.Irecv (p, slot) ->
          Hashtbl.remove converted slot;
          out := Event.Irecv (quantize_p2p p, slot) :: !out
      | Event.Wait slot ->
          if Hashtbl.mem converted slot then Hashtbl.remove converted slot
          else out := Event.Wait slot :: !out
      | Event.Waitall slots ->
          let kept = List.filter (fun s -> not (Hashtbl.mem converted s)) slots in
          List.iter (fun s -> Hashtbl.remove converted s) slots;
          if kept <> [] then out := Event.Waitall kept :: !out
      | Event.Send p -> out := Event.Send (quantize_p2p p) :: !out
      | Event.Recv p -> out := Event.Recv (quantize_p2p p) :: !out
      | Event.Sendrecv { send; recv } ->
          out := Event.Sendrecv { send = quantize_p2p send; recv = quantize_p2p recv } :: !out
      | Event.Bcast b -> out := Event.Bcast { b with count = quantize b.count } :: !out
      | Event.Reduce r -> out := Event.Reduce { r with count = quantize r.count } :: !out
      | Event.Allreduce r -> out := Event.Allreduce { r with count = quantize r.count } :: !out
      | Event.Alltoall a -> out := Event.Alltoall { a with count = quantize a.count } :: !out
      | Event.Alltoallv a ->
          out := Event.Alltoallv { a with send_counts = Array.map quantize a.send_counts } :: !out
      | Event.Allgather a -> out := Event.Allgather { a with count = quantize a.count } :: !out
      | Event.Gather g -> out := Event.Gather { g with count = quantize g.count } :: !out
      | Event.Scatter s -> out := Event.Scatter { s with count = quantize s.count } :: !out
      | Event.Scan s -> out := Event.Scan { s with count = quantize s.count } :: !out
      | Event.Exscan s -> out := Event.Exscan { s with count = quantize s.count } :: !out
      | Event.Reduce_scatter s ->
          out := Event.Reduce_scatter { s with count = quantize s.count } :: !out
      | Event.Ibarrier { comm; req } ->
          Hashtbl.replace converted req ();
          out := Event.Barrier { comm } :: !out
      | Event.Ibcast { comm; root; dt; count; req } ->
          Hashtbl.replace converted req ();
          out := Event.Bcast { comm; root; dt; count = quantize count } :: !out
      | Event.Iallreduce { comm; dt; count; op; req } ->
          Hashtbl.replace converted req ();
          out := Event.Allreduce { comm; dt; count = quantize count; op } :: !out
      | Event.File_write_all f ->
          out := Event.File_write_all { f with count = quantize f.count } :: !out
      | Event.File_read_all f ->
          out := Event.File_read_all { f with count = quantize f.count } :: !out
      | Event.File_write_at f ->
          out := Event.File_write_at { f with count = quantize f.count } :: !out
      | Event.File_read_at f ->
          out := Event.File_read_at { f with count = quantize f.count } :: !out
      | Event.Barrier _ | Event.Comm_split _ | Event.Comm_dup _ | Event.Comm_free _
      | Event.File_open _ | Event.File_close _ | Event.Compute _ ->
          out := ev :: !out)
    stream;
  Array.of_list (List.rev !out)

let synthesize ~platform ~workload ~nranks ~streams ~compute_table =
  if known_failure ~workload ~nranks then
    raise
      (Unsupported
         (Printf.sprintf "%s at %d processes: ScalaTrace V4 generation crash" workload nranks));
  (* RSD merge viability: the histogram layer absorbs parameter diversity,
     but the RSD structural merge needs ranks to share the event-sequence
     *shape* (same call names in the same order).  Count distinct shapes. *)
  let shapes = Hashtbl.create 64 in
  let shape_key ev =
    match (ev : Event.t) with
    | Event.Compute _ -> "c"
    | Event.Send _ -> "S"
    | Event.Recv _ -> "R"
    | Event.Isend _ -> "IS"
    | Event.Irecv _ -> "IR"
    | Event.Wait _ -> "W"
    | Event.Waitall _ -> "WA"
    | Event.Sendrecv _ -> "SR"
    | Event.Barrier _ -> "B"
    | Event.Bcast _ -> "BC"
    | Event.Reduce _ -> "RD"
    | Event.Allreduce _ -> "AR"
    | Event.Alltoall _ -> "A2"
    | Event.Alltoallv _ -> "AV"
    | Event.Allgather _ -> "AG"
    | Event.Gather _ -> "G"
    | Event.Scatter _ -> "SC"
    | Event.Scan _ -> "SN"
    | Event.Exscan _ -> "EX"
    | Event.Reduce_scatter _ -> "RS"
    | Event.Ibarrier _ -> "IB"
    | Event.Ibcast _ -> "IBC"
    | Event.Iallreduce _ -> "IAR"
    | Event.Comm_split _ -> "CS"
    | Event.Comm_dup _ -> "CD"
    | Event.Comm_free _ -> "CF"
    | Event.File_open _ -> "FO"
    | Event.File_close _ -> "FCL"
    | Event.File_write_all _ -> "FW"
    | Event.File_read_all _ -> "FRD"
    | Event.File_write_at _ -> "FWI"
    | Event.File_read_at _ -> "FRI"
  in
  Array.iter
    (fun stream ->
      let key =
        String.concat "|" (Array.to_list (Array.map shape_key stream))
        |> Digest.string |> Digest.to_hex
      in
      Hashtbl.replace shapes key ())
    streams;
  if Hashtbl.length shapes > 16 then
    raise
      (Unsupported
         (Printf.sprintf "%s: %d distinct rank behaviours exceed the RSD merge capacity"
            workload (Hashtbl.length shapes)));
  let n = Compute_table.cluster_count compute_table in
  (* Durations, like message sizes, live in power-of-two histogram bins
     (ScalaTrace's delta-time histograms): replay sleeps the bin centre. *)
  let quantize_time t =
    if t <= 0.0 then 0.0
    else begin
      let k = Float.round (Float.log2 t -. 0.5) in
      1.5 *. (2.0 ** k)
    end
  in
  let sleeps =
    Array.init n (fun cid ->
        let c = Compute_table.centroid compute_table cid in
        quantize_time (Cpu.seconds_of_cycles platform.Spec.cpu c.Counters.cyc))
  in
  { nranks; streams = Array.map transform streams; sleeps }

let program t ctx =
  let rank = Engine.rank ctx in
  let nranks = t.nranks in
  let reqs = Hashtbl.create 16 in
  let comms = Hashtbl.create 4 in
  let files = Hashtbl.create 4 in
  Hashtbl.replace comms 0 (Engine.comm_world ctx);
  let comm_of id = Hashtbl.find comms id in
  let req_of id =
    let r = Hashtbl.find reqs id in
    Hashtbl.remove reqs id;
    r
  in
  let abs_peer rel = if rel = Call.any_source then rel else (rank + rel) mod nranks in
  let exec ev =
    match (ev : Event.t) with
    | Event.Compute cid -> Engine.sleep ctx t.sleeps.(cid)
    | Event.Send { rel_peer; tag; dt; count; comm = _ } ->
        Engine.send ctx ~dest:(abs_peer rel_peer) ~tag ~dt ~count
    | Event.Recv { rel_peer; tag; dt; count; comm = _ } ->
        Engine.recv ctx ~src:(abs_peer rel_peer) ~tag ~dt ~count
    | Event.Isend ({ rel_peer; tag; dt; count; comm = _ }, slot) ->
        Hashtbl.replace reqs slot (Engine.isend ctx ~dest:(abs_peer rel_peer) ~tag ~dt ~count)
    | Event.Irecv ({ rel_peer; tag; dt; count; comm = _ }, slot) ->
        Hashtbl.replace reqs slot (Engine.irecv ctx ~src:(abs_peer rel_peer) ~tag ~dt ~count)
    | Event.Wait slot -> Engine.wait ctx (req_of slot)
    | Event.Waitall slots -> Engine.waitall ctx (List.map req_of slots)
    | Event.Sendrecv { send; recv } ->
        Engine.sendrecv ctx ~dest:(abs_peer send.rel_peer) ~send_tag:send.tag
          ~src:(abs_peer recv.rel_peer) ~recv_tag:recv.tag ~dt:send.dt ~send_count:send.count
          ~recv_count:recv.count
    | Event.Barrier { comm } -> Engine.barrier ctx (comm_of comm)
    | Event.Bcast { comm; root; dt; count } -> Engine.bcast ctx (comm_of comm) ~root ~dt ~count
    | Event.Reduce { comm; root; dt; count; op } ->
        Engine.reduce ctx (comm_of comm) ~root ~dt ~count ~op
    | Event.Allreduce { comm; dt; count; op } -> Engine.allreduce ctx (comm_of comm) ~dt ~count ~op
    | Event.Alltoall { comm; dt; count } -> Engine.alltoall ctx (comm_of comm) ~dt ~count
    | Event.Alltoallv { comm; dt; send_counts } ->
        Engine.alltoallv ctx (comm_of comm) ~dt ~send_counts
    | Event.Allgather { comm; dt; count } -> Engine.allgather ctx (comm_of comm) ~dt ~count
    | Event.Gather { comm; root; dt; count } -> Engine.gather ctx (comm_of comm) ~root ~dt ~count
    | Event.Scatter { comm; root; dt; count } ->
        Engine.scatter ctx (comm_of comm) ~root ~dt ~count
    | Event.Scan { comm; dt; count; op } -> Engine.scan ctx (comm_of comm) ~dt ~count ~op
    | Event.Exscan { comm; dt; count; op } -> Engine.exscan ctx (comm_of comm) ~dt ~count ~op
    | Event.Reduce_scatter { comm; dt; count; op } ->
        Engine.reduce_scatter ctx (comm_of comm) ~dt ~count ~op
    | Event.Ibarrier { comm; req } ->
        Hashtbl.replace reqs req (Engine.ibarrier ctx (comm_of comm))
    | Event.Ibcast { comm; root; dt; count; req } ->
        Hashtbl.replace reqs req (Engine.ibcast ctx (comm_of comm) ~root ~dt ~count)
    | Event.Iallreduce { comm; dt; count; op; req } ->
        Hashtbl.replace reqs req (Engine.iallreduce ctx (comm_of comm) ~dt ~count ~op)
    | Event.Comm_split { comm; color; key; newcomm } ->
        Hashtbl.replace comms newcomm (Engine.comm_split ctx (comm_of comm) ~color ~key)
    | Event.Comm_dup { comm; newcomm } ->
        Hashtbl.replace comms newcomm (Engine.comm_dup ctx (comm_of comm))
    | Event.Comm_free { comm } ->
        Engine.comm_free ctx (comm_of comm);
        Hashtbl.remove comms comm
    | Event.File_open { comm; file } ->
        Hashtbl.replace files file (Engine.file_open ctx (comm_of comm))
    | Event.File_close { file } ->
        Engine.file_close ctx (Hashtbl.find files file);
        Hashtbl.remove files file
    | Event.File_write_all { file; dt; count } ->
        Engine.file_write_all ctx (Hashtbl.find files file) ~dt ~count
    | Event.File_read_all { file; dt; count } ->
        Engine.file_read_all ctx (Hashtbl.find files file) ~dt ~count
    | Event.File_write_at { file; dt; count } ->
        Engine.file_write_at ctx (Hashtbl.find files file) ~dt ~count
    | Event.File_read_at { file; dt; count } ->
        Engine.file_read_at ctx (Hashtbl.find files file) ~dt ~count
  in
  Array.iter exec t.streams.(rank)
