lib/workloads/npb_bt.ml: Adi Common
