bench/exp_fig45.ml: Array Engine Evaluate Exp_common List Pipeline Printf Recorder Registry Siesta_baselines Siesta_perf Siesta_synth Siesta_trace
