(** MINIME-style computation synthesizer (Deniz et al., the comparator of
    Figs. 4–5).

    MINIME builds multicore benchmarks by {e iteratively} adjusting code
    block counts until the synthetic program's IPC (instructions per
    cycle), CMR (cache miss rate) and BMR (branch misprediction rate)
    approach the target's.  Unlike Siesta's one-shot constrained QP over
    all six counters, it is a greedy search over three derived ratios —
    which converges close but not exactly, and accumulates error when
    events are mimicked one at a time.

    The reimplementation shares Siesta's block set so the comparison
    isolates the search strategy, as the paper's does. *)

type solution = {
  x : float array;  (** block repetition counts *)
  achieved : Siesta_perf.Counters.t;
  ratio_error : float;  (** mean relative error over IPC, CMR, BMR *)
}

val search :
  platform:Siesta_platform.Spec.t ->
  target:Siesta_perf.Counters.t ->
  solution
(** Greedy multiplicative coordinate search on the three ratios, scaled to
    the target instruction count. *)

val ratio_error :
  actual:Siesta_perf.Counters.t -> reference:Siesta_perf.Counters.t -> float
(** Mean relative error of IPC/CMR/BMR — the metric of Figs. 4–5. *)
