lib/analysis/phases.mli: Siesta_merge
