(** Analytic CPU timing model.

    This substitutes for the paper's hardware performance counters (PAPI on
    real Xeons): a unit of computational work is described by a {!work}
    signature, and the model prices it in cycles on a given {!t}.  The same
    model prices both the traced programs' kernels and Siesta's predefined
    code blocks, so that "measuring" either with the simulated counters is
    self-consistent — the property the proxy-search QP relies on.

    The cycle model is a standard bottleneck decomposition:
    {v
      cycles = max(ins / issue_width, (loads+stores) / lsu_ports)
             + div_ops     * div_latency
             + mispredicts * branch_penalty
             + l1_misses   * miss_penalty(working_set)
    v}
    where [miss_penalty] is the L2 hit penalty when the working set fits in
    L2 and the memory penalty otherwise.  Wider cores (issue width), slower
    dividers, smaller L2s and lower frequency therefore change execution
    time in physically plausible directions — which is what the paper's
    portability experiments (Fig. 8, Fig. 9) exercise. *)

type t = {
  name : string;
  frequency_ghz : float;
  issue_width : float;  (** sustained instructions per cycle cap *)
  lsu_ports : float;  (** load/store operations retired per cycle *)
  l1_kb : int;  (** L1 data cache size, KiB *)
  l2_kb : int;  (** L2 cache size, KiB *)
  cacheline_bytes : int;
  l2_hit_penalty : float;  (** cycles per L1 miss that hits in L2 *)
  mem_penalty : float;  (** cycles per L1 miss that goes to memory *)
  div_latency : float;  (** cycles per floating divide *)
  branch_penalty : float;  (** cycles per mispredicted branch *)
}

(** One unit of computational work, as "seen" by the performance counters
    plus the structural facts (divides, working set) needed to price it. *)
type work = {
  ins : float;  (** retired instructions *)
  loads : float;
  stores : float;
  branches : float;  (** retired conditional branches *)
  mispredicts : float;  (** mispredicted conditional branches *)
  l1_misses : float;  (** L1 data-cache misses *)
  div_ops : float;  (** long-latency divide operations *)
  working_set_bytes : float;  (** resident footprint during the work *)
}

val zero_work : work
val add_work : work -> work -> work
val scale_work : float -> work -> work

val cycles : t -> work -> float
(** Price [work] on this CPU, in cycles. *)

val seconds : t -> work -> float
(** [cycles] converted through the clock frequency. *)

val seconds_of_cycles : t -> float -> float
