(** Self-contained HTML trend dashboard over {!Ledger} records.

    One file, no external requests: the records are embedded as plain
    JSON in a [<script type="application/json" id="ledger-data">] block
    (scrapeable by other tools), and a small hand-written canvas script
    plots stage-time trajectories and fidelity-error trajectories across
    run sequence numbers, plus a per-run summary table. *)

val render : ?title:string -> Ledger.record list -> string
(** The full HTML document.  Pass records in ledger order
    ({!Ledger.runs} already sorts by sequence). *)

val write : ?title:string -> Ledger.record list -> path:string -> unit
(** [render] to a file (truncates). *)
