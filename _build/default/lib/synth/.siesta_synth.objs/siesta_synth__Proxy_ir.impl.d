lib/synth/proxy_ir.ml: Array Hashtbl List Printf Proxy_search Shrink Siesta_blocks Siesta_merge Siesta_mpi Siesta_perf Siesta_platform Siesta_trace Siesta_util
