module Trace_io = Siesta_trace.Trace_io
module Event = Siesta_trace.Event
module Counters = Siesta_perf.Counters
module Grammar = Siesta_grammar.Grammar
module Merged = Siesta_merge.Merged
module Rank_list = Siesta_merge.Rank_list
module Proxy_ir = Siesta_synth.Proxy_ir
module Shrink = Siesta_synth.Shrink
module Linreg = Siesta_numerics.Linreg

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* v2: trace blobs switched from boxed per-rank event streams to the
   struct-of-arrays layout (definition table + chunked dense-code
   streams).  Cached v1 blobs fail the version check and degrade to a
   cache miss — the store re-encodes on the next run. *)
let schema_version = 2
let magic = "SSB1"
let float_repr f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

(* ------------------------------------------------------------------ *)
(* Wire primitives *)

module Wire = struct
  type writer = Buffer.t
  type reader = { s : string; mutable pos : int }

  let writer () = Buffer.create 4096
  let contents = Buffer.contents
  let reader s = { s; pos = 0 }
  let at_end r = r.pos = String.length r.s

  let need r n =
    if r.pos + n > String.length r.s then
      corrupt "truncated input (need %d bytes at offset %d of %d)" n r.pos
        (String.length r.s)

  (* Unsigned LEB128 over the zigzag transform: any 63-bit OCaml int
     round-trips, small magnitudes (positive or negative) stay short. *)
  let w_varint b i =
    let u = (i lsl 1) lxor (i asr (Sys.int_size - 1)) in
    let rec go u =
      if u land lnot 0x7f = 0 then Buffer.add_char b (Char.chr (u land 0x7f))
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (u land 0x7f)));
        go (u lsr 7)
      end
    in
    go u

  let r_varint r =
    let rec go shift acc =
      if shift > Sys.int_size then corrupt "varint too long at offset %d" r.pos;
      need r 1;
      let c = Char.code (String.unsafe_get r.s r.pos) in
      r.pos <- r.pos + 1;
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let u = go 0 0 in
    (u lsr 1) lxor (- (u land 1))

  let w_int64_le b v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
    done

  let r_int64_le r =
    need r 8;
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (String.unsafe_get r.s (r.pos + i))))
    done;
    r.pos <- r.pos + 8;
    !v

  let w_float b f = w_int64_le b (Int64.bits_of_float f)
  let r_float r = Int64.float_of_bits (r_int64_le r)

  let w_string b s =
    w_varint b (String.length s);
    Buffer.add_string b s

  let r_string r =
    let n = r_varint r in
    if n < 0 then corrupt "negative string length at offset %d" r.pos;
    need r n;
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s
end

open Wire

(* Length-checked counts: every repeated structure is preceded by a
   count that must be sane before we Array.init over it. *)
let r_count ?(max = 1 lsl 30) r what =
  let n = r_varint r in
  if n < 0 || n > max then corrupt "implausible %s count %d" what n;
  n

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame ~kind payload =
  let b = writer () in
  Buffer.add_string b magic;
  w_varint b schema_version;
  w_string b kind;
  w_varint b (String.length payload);
  Buffer.add_string b payload;
  let body = contents b in
  let b2 = Buffer.create (String.length body + 8) in
  Buffer.add_string b2 body;
  w_int64_le b2 (Hash.fnv64 body);
  Buffer.contents b2

let unframe blob =
  let len = String.length blob in
  if len < String.length magic + 8 then corrupt "blob too short (%d bytes)" len;
  let body = String.sub blob 0 (len - 8) in
  let stored =
    let r = reader (String.sub blob (len - 8) 8) in
    r_int64_le r
  in
  if not (Int64.equal stored (Hash.fnv64 body)) then
    corrupt "checksum mismatch (stored %Lx, computed %Lx)" stored (Hash.fnv64 body);
  let r = reader body in
  need r (String.length magic);
  let m = String.sub r.s 0 (String.length magic) in
  if m <> magic then corrupt "bad magic %S" m;
  r.pos <- String.length magic;
  let v = r_varint r in
  if v <> schema_version then
    corrupt "schema version mismatch (blob v%d, runtime v%d)" v schema_version;
  let kind = r_string r in
  let n = r_varint r in
  if n < 0 || r.pos + n <> String.length body then
    corrupt "payload length %d does not match frame" n;
  (kind, String.sub body r.pos n)

let kind_of blob =
  match
    let r = reader blob in
    need r (String.length magic);
    if String.sub r.s 0 (String.length magic) <> magic then corrupt "bad magic";
    r.pos <- String.length magic;
    let _v = r_varint r in
    r_string r
  with
  | kind -> Some kind
  | exception Corrupt _ -> None

(* ------------------------------------------------------------------ *)
(* Shared sub-codecs *)

let w_event_key b ev = w_string b (Event.to_key ev)

let r_event r =
  let key = r_string r in
  match Event.of_key key with
  | ev -> ev
  | exception Failure m -> corrupt "bad event key %S: %s" key m

let w_rule b (rule : Grammar.rule) =
  w_varint b (List.length rule);
  List.iter
    (fun { Grammar.sym; reps } ->
      (* Tag-in-low-bit symbol encoding: T v -> 2v, N i -> 2i+1. *)
      (match sym with
      | Grammar.T v -> w_varint b (v lsl 1)
      | Grammar.N i -> w_varint b ((i lsl 1) lor 1));
      w_varint b reps)
    rule

let r_rule r : Grammar.rule =
  let n = r_count r "rule entry" in
  List.init n (fun _ ->
      let tagged = r_varint r in
      if tagged < 0 then corrupt "negative symbol code";
      let sym =
        if tagged land 1 = 0 then Grammar.T (tagged lsr 1) else Grammar.N (tagged lsr 1)
      in
      let reps = r_varint r in
      if reps < 1 then corrupt "non-positive repetition count %d" reps;
      { Grammar.sym; reps })

let w_rank_list b rl =
  let ranks = Rank_list.to_list rl in
  w_varint b (List.length ranks);
  (* delta-encoded: ascending lists of near-contiguous ranks are tiny *)
  ignore
    (List.fold_left
       (fun prev rank ->
         w_varint b (rank - prev);
         rank)
       0 ranks)

let r_rank_list r =
  let n = r_count r "rank list" in
  let prev = ref 0 in
  let ranks =
    List.init n (fun _ ->
        let rank = !prev + r_varint r in
        prev := rank;
        rank)
  in
  Rank_list.of_list ranks

let w_merged b (m : Merged.t) =
  w_varint b m.Merged.nranks;
  w_varint b (Array.length m.Merged.terminals);
  Array.iter (w_event_key b) m.Merged.terminals;
  w_varint b (Array.length m.Merged.rules);
  Array.iter (w_rule b) m.Merged.rules;
  w_varint b (Array.length m.Merged.mains);
  Array.iter
    (fun entries ->
      w_varint b (List.length entries);
      List.iter
        (fun { Merged.sym; reps; ranks } ->
          (match sym with
          | Grammar.T v -> w_varint b (v lsl 1)
          | Grammar.N i -> w_varint b ((i lsl 1) lor 1));
          w_varint b reps;
          w_rank_list b ranks)
        entries)
    m.Merged.mains;
  w_varint b (Array.length m.Merged.main_ranks);
  Array.iter (w_rank_list b) m.Merged.main_ranks

let r_merged r : Merged.t =
  let nranks = r_varint r in
  if nranks <= 0 then corrupt "non-positive nranks %d" nranks;
  let nterms = r_count r "terminal" in
  let terminals = Array.init nterms (fun _ -> r_event r) in
  let nrules = r_count r "rule" in
  let rules = Array.init nrules (fun _ -> r_rule r) in
  let nmains = r_count r "main" in
  let mains =
    Array.init nmains (fun _ ->
        let n = r_count r "main entry" in
        List.init n (fun _ ->
            let tagged = r_varint r in
            if tagged < 0 then corrupt "negative symbol code";
            let sym =
              if tagged land 1 = 0 then Grammar.T (tagged lsr 1)
              else Grammar.N (tagged lsr 1)
            in
            let reps = r_varint r in
            if reps < 1 then corrupt "non-positive repetition count %d" reps;
            let ranks = r_rank_list r in
            { Merged.sym; reps; ranks }))
  in
  let nmr = r_count r "main rank-list" in
  let main_ranks = Array.init nmr (fun _ -> r_rank_list r) in
  { Merged.nranks; terminals; rules; mains; main_ranks }

(* ------------------------------------------------------------------ *)
(* Trace *)

type trace_meta = {
  tm_original_elapsed : float;
  tm_instrumented_elapsed : float;
  tm_original_calls : int;
  tm_instrumented_calls : int;
  tm_total_events : int;
  tm_raw_bytes : int;
}

let meta_overhead m =
  if m.tm_original_elapsed = 0.0 then 0.0
  else (m.tm_instrumented_elapsed -. m.tm_original_elapsed) /. m.tm_original_elapsed

(* Codes per chunk of a serialized stream.  Encoding walks the SoA
   buffers directly and decoding appends into fresh SoA buffers chunk by
   chunk, so neither side ever materializes a boxed event stream and the
   working set per rank is one chunk of varints. *)
let trace_chunk_codes = 65536

let encode_trace ~meta (pk : Trace_io.packed) =
  let b = writer () in
  w_float b meta.tm_original_elapsed;
  w_float b meta.tm_instrumented_elapsed;
  w_varint b meta.tm_original_calls;
  w_varint b meta.tm_instrumented_calls;
  w_varint b meta.tm_total_events;
  w_varint b meta.tm_raw_bytes;
  w_varint b pk.Trace_io.p_nranks;
  w_varint b (Array.length pk.Trace_io.p_centroids);
  Array.iter
    (fun (c, members) ->
      Array.iter (w_float b) (Counters.to_array c);
      w_varint b members)
    pk.Trace_io.p_centroids;
  (* The definition table holds each distinct event once (as its text
     key, in code order); streams are varint codes into it.  SPMD traces
     repeat a handful of relative-rank-encoded events millions of times,
     so this is the difference between O(trace) and O(distinct events)
     text — and with the SoA representation the codes already exist. *)
  w_varint b (Array.length pk.Trace_io.p_defs);
  Array.iter (fun ev -> w_string b (Event.to_key ev)) pk.Trace_io.p_defs;
  w_varint b (Array.length pk.Trace_io.p_codes);
  Array.iter
    (fun codes ->
      let n = Siesta_trace.Soa.length codes in
      w_varint b n;
      let i = ref 0 in
      while !i < n do
        let len = min trace_chunk_codes (n - !i) in
        w_varint b len;
        for j = !i to !i + len - 1 do
          w_varint b (Siesta_trace.Soa.unsafe_get codes j)
        done;
        i := !i + len
      done)
    pk.Trace_io.p_codes;
  frame ~kind:"trace" (contents b)

let decode_trace blob =
  let kind, payload = unframe blob in
  if kind <> "trace" then corrupt "expected a trace blob, got %S" kind;
  let r = reader payload in
  let tm_original_elapsed = r_float r in
  let tm_instrumented_elapsed = r_float r in
  let tm_original_calls = r_varint r in
  let tm_instrumented_calls = r_varint r in
  let tm_total_events = r_varint r in
  let tm_raw_bytes = r_varint r in
  let nranks = r_varint r in
  if nranks <= 0 then corrupt "non-positive nranks %d" nranks;
  let ncentroids = r_count r "centroid" in
  let centroids =
    Array.init ncentroids (fun _ ->
        let a = Array.init 6 (fun _ -> r_float r) in
        let members = r_varint r in
        (Counters.of_array a, members))
  in
  let ndefs = r_count r "event definition" in
  let defs =
    Array.init ndefs (fun _ ->
        let key = r_string r in
        match Event.of_key key with
        | ev -> ev
        | exception Failure m -> corrupt "bad event key %S: %s" key m)
  in
  let nstreams = r_count r "stream" in
  if nstreams <> nranks then corrupt "stream count %d <> nranks %d" nstreams nranks;
  let p_codes =
    Array.init nstreams (fun rank ->
        let total = r_count r "event" in
        let buf = Siesta_trace.Soa.create ~capacity:(max 16 total) () in
        while Siesta_trace.Soa.length buf < total do
          let len = r_varint r in
          if len <= 0 then corrupt "bad chunk length %d in stream %d" len rank;
          if Siesta_trace.Soa.length buf + len > total then
            corrupt "chunk overruns stream %d (%d codes declared, %d expected)" rank len
              (total - Siesta_trace.Soa.length buf);
          for _ = 1 to len do
            let code = r_varint r in
            if code < 0 || code >= ndefs then
              corrupt "event code %d out of range in stream %d" code rank;
            Siesta_trace.Soa.append buf code
          done
        done;
        buf)
  in
  if not (at_end r) then corrupt "trailing bytes after trace payload";
  ( {
      tm_original_elapsed;
      tm_instrumented_elapsed;
      tm_original_calls;
      tm_instrumented_calls;
      tm_total_events;
      tm_raw_bytes;
    },
    {
      Trace_io.p_nranks = nranks;
      p_defs = defs;
      p_codes;
      p_centroids = centroids;
      p_grammars = None;
    } )

(* ------------------------------------------------------------------ *)
(* Per-rank grammar set *)

let encode_grammars (gs : Grammar.t array) =
  let b = writer () in
  w_varint b (Array.length gs);
  Array.iter
    (fun (g : Grammar.t) ->
      w_rule b g.Grammar.main;
      w_varint b (Array.length g.Grammar.rules);
      Array.iter (w_rule b) g.Grammar.rules)
    gs;
  frame ~kind:"grammars" (contents b)

let decode_grammars blob =
  let kind, payload = unframe blob in
  if kind <> "grammars" then corrupt "expected a grammars blob, got %S" kind;
  let r = reader payload in
  let n = r_count r "grammar" in
  let gs =
    Array.init n (fun _ ->
        let main = r_rule r in
        let nrules = r_count r "rule" in
        let rules = Array.init nrules (fun _ -> r_rule r) in
        { Grammar.main; rules })
  in
  if not (at_end r) then corrupt "trailing bytes after grammars payload";
  gs

(* ------------------------------------------------------------------ *)
(* Merged program *)

let encode_merged m =
  let b = writer () in
  w_merged b m;
  frame ~kind:"merged" (contents b)

let decode_merged blob =
  let kind, payload = unframe blob in
  if kind <> "merged" then corrupt "expected a merged blob, got %S" kind;
  let r = reader payload in
  let m = r_merged r in
  if not (at_end r) then corrupt "trailing bytes after merged payload";
  m

(* ------------------------------------------------------------------ *)
(* Proxy / QP solution *)

let encode_proxy (p : Proxy_ir.t) =
  let b = writer () in
  w_merged b p.Proxy_ir.merged;
  w_varint b (Array.length p.Proxy_ir.combos);
  Array.iter
    (fun row ->
      w_varint b (Array.length row);
      Array.iter (w_float b) row)
    p.Proxy_ir.combos;
  w_varint b (Array.length p.Proxy_ir.combo_errors);
  Array.iter (w_float b) p.Proxy_ir.combo_errors;
  let sh = p.Proxy_ir.shrink in
  w_float b (Shrink.factor sh);
  let reg = Shrink.regression sh in
  w_float b reg.Linreg.slope;
  w_float b reg.Linreg.intercept;
  w_string b p.Proxy_ir.generated_on;
  frame ~kind:"proxy" (contents b)

let decode_proxy blob =
  let kind, payload = unframe blob in
  if kind <> "proxy" then corrupt "expected a proxy blob, got %S" kind;
  let r = reader payload in
  let merged = r_merged r in
  let ncombos = r_count r "combo" in
  let combos =
    Array.init ncombos (fun _ ->
        let n = r_count r "combo column" in
        Array.init n (fun _ -> r_float r))
  in
  let nerr = r_count r "combo error" in
  let combo_errors = Array.init nerr (fun _ -> r_float r) in
  let factor = r_float r in
  let slope = r_float r in
  let intercept = r_float r in
  let generated_on = r_string r in
  if not (at_end r) then corrupt "trailing bytes after proxy payload";
  {
    Proxy_ir.merged;
    combos;
    combo_errors;
    shrink = Shrink.of_parts ~factor ~regression:{ Linreg.slope; intercept };
    generated_on;
  }

(* ------------------------------------------------------------------ *)
(* Run-ledger records.  The payload is a UTF-8 JSON document (the ledger
   versions its own field layout inside the document); the frame adds
   the magic, store schema version and checksum, so `store verify`
   vets ledger records with the same machinery as stage artifacts. *)

let encode_run payload = frame ~kind:"run" payload

let decode_run blob =
  let kind, payload = unframe blob in
  if kind <> "run" then corrupt "expected a run record, got %S" kind;
  payload

(* Server artifacts (generated C, markdown reports, JSON verdicts, HTML
   dashboards) are plain text, but they live in the same store as stage
   blobs, so they get the same framing — `store verify` vets them with
   no special case. *)

let encode_text payload = frame ~kind:"text" payload

let decode_text blob =
  let kind, payload = unframe blob in
  if kind <> "text" then corrupt "expected a text artifact, got %S" kind;
  payload
