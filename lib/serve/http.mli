(** Hand-rolled HTTP/1.1 over [Unix] file descriptors — the daemon's
    wire layer and the [siesta http] client.

    Strictly one request per connection ([Connection: close] on every
    response).  Parsing is defensive by construction: requests come off
    a pull-{!reader} (so tests can feed raw strings), every limit is
    enforced while reading (request line / header line length, header
    count, [Content-Length] vs [max_body]), and every malformed input
    maps to a typed {!parse_error} — nothing a garbage client sends can
    raise past {!read_request}. *)

type request = {
  meth : string;
  path : string;
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type parse_error =
  | Eof  (** clean close before any request bytes — not a protocol error *)
  | Timeout  (** the socket's [SO_RCVTIMEO] expired mid-request *)
  | Malformed of string  (** respond 400 *)
  | Too_large of string  (** declared body exceeds [max_body]: respond 413 *)

(** {1 Reading requests} *)

type reader
(** Buffered pull-reader; the parser's only input abstraction. *)

val reader_of_fd : Unix.file_descr -> reader
val reader_of_string : string -> reader

val read_request : ?max_body:int -> reader -> (request, parse_error) result
(** Parse one request (line, headers, [Content-Length]-framed body).
    [max_body] defaults to 8 MiB.  Never raises on malformed input. *)

(** {1 Responses} *)

type response = { status : int; headers : (string * string) list; body : string }

val reason_of : int -> string

val response : ?content_type:string -> ?headers:(string * string) list -> int -> string -> response
(** [content_type] defaults to [application/json]. *)

val render : ?head_only:bool -> response -> string
(** The full wire bytes ([Content-Length] + [Connection: close] added).
    [head_only] keeps the headers — including the body's length — but
    omits the body (HEAD). *)

val write_response : ?head_only:bool -> Unix.file_descr -> response -> unit

(** {1 Client} *)

type address = [ `Unix of string | `Tcp of string * int ]

val request :
  addr:address ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** One request/response exchange: connect, send, read the reply, close.
    Returns [(status, headers, body)]; [Error] carries a human-readable
    reason (connect failure, malformed reply, timeout). *)
