(* Domain pool: Domain.spawn workers around a range-chunked work queue
   guarded by a Mutex/Condition pair.  No dependencies beyond the stdlib
   (plus the in-tree Siesta_obs telemetry layer).

   Scheduler policy (the "never slower than serial" contract):

   - Adaptive sizing.  Implicit sizing (create with [?domains = None],
     or the [SIESTA_NUM_DOMAINS] environment variable) is clamped to
     [Domain.recommended_domain_count]: spawning more domains than the
     host has usable cores makes every chunk wait for a timeslice, not
     for work (measured as queue-wait p95 on the order of the whole
     merge wall on a 1-core CI host).  An explicit [~domains] request
     stays raw — the determinism cross-checks deliberately exercise the
     oversubscribed parallel code path.  [requested]/[effective]/
     [clamped] are recorded in [stats], the pool-creation log line and
     the Metrics registry.

   - Cost-gated dispatch.  Each pool keeps an EWMA estimate of the
     per-item cost, updated online from every job's measured busy time.
     A job whose estimated work (items x est cost) falls under
     [gate_threshold_s] executes inline on slot 0 — no posting, no
     wakeups, no queue-wait — so small ranks/workloads never pay
     dispatch overhead.  Uncalibrated pools dispatch (and thereby
     calibrate).  [~gate:false] disables the gate for callers that need
     the queued path unconditionally (benches, scheduling tests).

   - Adaptive chunking.  Workers claim *ranges* of items whose size
     adapts to the measured per-chunk time of the current job: chunks
     finishing under [t_chunk_lo] double the claim size (bounding queue
     traffic), chunks over [t_chunk_hi] halve it, and every claim is
     capped at a 1/domains share of the remaining range (bounding tail
     imbalance, guided-self-scheduling style).  The initial chunk size
     comes from the cost estimate when calibrated.

   - Shared warm pool.  [global ()] lazily creates one process-wide
     implicitly-sized pool, shut down at exit, so repeated pipeline
     invocations stop paying Domain.spawn per merge.

   Lifecycle: [create] spawns the workers, which block on [work] until a
   job is posted or [stop] is raised; [run]/[run_range] post a job,
   participate in chunk execution, then block on [finished] until the
   last item completes; [shutdown] raises [stop] and joins.  One job at
   a time — the pipeline's stages are sequential phases, each internally
   parallel.

   Observability: each pool carries per-slot busy-time/chunk counters
   and a queue-wait histogram (time from job posting to a chunk's
   execution start), exposed via [stats] and published to the
   Siesta_obs.Metrics registry on [shutdown].  Slot 0 is the submitting
   caller, slots 1..d-1 the spawned workers.  The per-chunk clock reads
   are two monotonic reads per claimed range; ranges are deliberately
   coarse, so this stays invisible next to the work.  Per-chunk spans
   are emitted only when Siesta_obs.Span is enabled, rendering each
   domain as its own track in the Chrome trace. *)

module Obs_log = Siesta_obs.Log
module Obs_span = Siesta_obs.Span
module Obs_metrics = Siesta_obs.Metrics
module Histo = Siesta_obs.Metrics.Histo
module Clock = Siesta_obs.Clock

(* --- scheduler tuning ------------------------------------------------ *)

(* Jobs whose estimated total work is below this execute inline on the
   caller: posting a job costs a mutex round plus worker wakeups, and on
   a loaded host potentially a timeslice per spawned domain — tens to
   hundreds of microseconds that a small job can never win back. *)
let gate_threshold_s = 200e-6

(* Per-chunk time window the adaptive splitter steers into: fast chunks
   double the claim size (amortizing queue traffic), slow chunks halve
   it (bounding tail imbalance). *)
let t_chunk_lo = 5e-4
let t_chunk_hi = 1e-2

(* Target duration used to size the first chunk from the calibrated
   per-item estimate. *)
let t_chunk_target = 2e-3

(* EWMA weight of the newest per-item cost sample. *)
let ewma_alpha = 0.3

type job = {
  body : int -> int -> unit;  (* executes the item range [lo, hi) *)
  items : int;
  posted_at : float;  (* Clock.now_s at posting, for queue-wait accounting *)
  min_chunk : int;
  mutable next : int;  (* next unclaimed item *)
  mutable live : int;  (* items not yet completed *)
  mutable chunk : int;  (* current adaptive claim size, in items *)
  mutable busy : float;  (* summed chunk-body seconds, for the estimator *)
  mutable failed : exn option;
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* workers: a job was posted / shutdown *)
  finished : Condition.t;  (* submitter: the job completed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  total : int;  (* effective size: workers + the participating caller *)
  requested : int;  (* what sizing asked for, before clamping *)
  clamped : bool;  (* effective < requested (implicit sizing only) *)
  gate : bool;  (* cost-gated dispatch enabled *)
  (* --- scheduler state --- *)
  mutable est_item_cost : float;  (* EWMA seconds/item; < 0 = uncalibrated *)
  mutable inline_jobs : int;  (* jobs executed on slot 0 without queueing *)
  mutable dispatched_jobs : int;  (* jobs posted to the worker queue *)
  (* --- telemetry (slot 0 = caller, 1.. = workers) --- *)
  busy_s : float array;  (* per-slot seconds inside chunk bodies *)
  chunks_done : int array;  (* per-slot claimed ranges executed *)
  queue_wait : Histo.t;  (* posting -> chunk start, seconds *)
  mutable jobs : int;  (* jobs submitted *)
}

type stats = {
  domains : int;
  requested : int;
  clamped : bool;
  jobs : int;
  inline_jobs : int;
  dispatched_jobs : int;
  est_item_cost_s : float;
  busy_s : float array;
  chunks_done : int array;
  queue_wait : Histo.t;
}

(* --- sizing ---------------------------------------------------------- *)

let recommended () = max 1 (Domain.recommended_domain_count ())

type sizing = { s_requested : int; s_effective : int; s_clamped : bool; s_source : string }

(* Implicit sizing: SIESTA_NUM_DOMAINS when set to a positive integer
   (clamped to the recommended count), else the recommended count.  An
   empty value counts as unset; anything else invalid is rejected with a
   warning naming the value — a silent fallback hid misconfiguration. *)
let implicit_sizing () =
  let r = recommended () in
  let from_recommended = { s_requested = r; s_effective = r; s_clamped = false; s_source = "recommended" } in
  match Sys.getenv_opt "SIESTA_NUM_DOMAINS" with
  | None -> from_recommended
  | Some s when String.trim s = "" -> from_recommended
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 ->
          let e = min n r in
          { s_requested = n; s_effective = e; s_clamped = e < n; s_source = "SIESTA_NUM_DOMAINS" }
      | Some _ | None ->
          Obs_log.warn (fun () ->
              ( "parallel.num_domains.invalid",
                [ ("SIESTA_NUM_DOMAINS", s); ("fallback", string_of_int r) ] ));
          from_recommended)

let num_domains_with_source () =
  let s = implicit_sizing () in
  (s.s_effective, s.s_source)

let num_domains () = fst (num_domains_with_source ())

(* --- chunk claiming -------------------------------------------------- *)

(* Claim-and-execute loop.  Called (and returns) with [pool.lock] held.
   [slot] identifies the executing domain for busy-time attribution. *)
let claim_chunks pool ~slot j =
  while j.next < j.items do
    let lo = j.next in
    (* tail-balance cap: never claim more than a 1/domains share of what
       remains, so the last chunks stay splittable across the pool *)
    let cap = max j.min_chunk ((j.items - lo + pool.total - 1) / pool.total) in
    let len = min (min j.chunk cap) (j.items - lo) in
    let hi = lo + len in
    j.next <- hi;
    Mutex.unlock pool.lock;
    let t0 = Clock.now_s () in
    Histo.observe pool.queue_wait (t0 -. j.posted_at);
    let error =
      try
        if Obs_span.enabled () then
          Obs_span.with_ ~cat:"pool"
            ~attrs:
              [
                ("lo", string_of_int lo);
                ("items", string_of_int len);
                ("slot", string_of_int slot);
              ]
            "parallel.chunk" (fun () -> j.body lo hi)
        else j.body lo hi;
        None
      with e -> Some e
    in
    let dt = Clock.now_s () -. t0 in
    pool.busy_s.(slot) <- pool.busy_s.(slot) +. dt;
    pool.chunks_done.(slot) <- pool.chunks_done.(slot) + 1;
    Mutex.lock pool.lock;
    j.busy <- j.busy +. dt;
    (* re-split the remaining range around the measured per-chunk time:
       too fast -> coarser claims (less queue traffic), too slow ->
       finer claims (less tail imbalance) *)
    (if error = None then
       if dt < t_chunk_lo then j.chunk <- j.chunk * 2
       else if dt > t_chunk_hi && j.chunk > j.min_chunk then
         j.chunk <- max j.min_chunk (j.chunk / 2));
    (match error with
    | None -> ()
    | Some e ->
        if j.failed = None then j.failed <- Some e;
        (* abandon unclaimed items so the job can terminate *)
        let unclaimed = j.items - j.next in
        j.next <- j.items;
        j.live <- j.live - unclaimed);
    j.live <- j.live - len;
    if j.live = 0 then begin
      pool.job <- None;
      Condition.broadcast pool.finished
    end
  done

let worker pool ~slot () =
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.lock
    else
      match pool.job with
      | Some j when j.next < j.items ->
          claim_chunks pool ~slot j;
          loop ()
      | Some _ | None ->
          Condition.wait pool.work pool.lock;
          loop ()
  in
  loop ()

let create ?domains ?(gate = true) () =
  let sizing =
    match domains with
    | Some d ->
        let d = max 1 d in
        { s_requested = d; s_effective = d; s_clamped = false; s_source = "explicit" }
    | None -> implicit_sizing ()
  in
  Obs_log.info (fun () ->
      ( "parallel.pool",
        [
          ("requested", string_of_int sizing.s_requested);
          ("effective", string_of_int sizing.s_effective);
          ("clamped", string_of_bool sizing.s_clamped);
          ("source", sizing.s_source);
          ("gate", string_of_bool gate);
          ("recommended", string_of_int (Domain.recommended_domain_count ()));
        ] ));
  let total = sizing.s_effective in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stop = false;
      workers = [];
      total;
      requested = sizing.s_requested;
      clamped = sizing.s_clamped;
      gate;
      est_item_cost = -1.0;
      inline_jobs = 0;
      dispatched_jobs = 0;
      busy_s = Array.make total 0.0;
      chunks_done = Array.make total 0;
      queue_wait = Histo.create ();
      jobs = 0;
    }
  in
  pool.workers <- List.init (total - 1) (fun i -> Domain.spawn (worker pool ~slot:(i + 1)));
  pool

let size pool = pool.total

let stats (pool : pool) : stats =
  {
    domains = pool.total;
    requested = pool.requested;
    clamped = pool.clamped;
    jobs = pool.jobs;
    inline_jobs = pool.inline_jobs;
    dispatched_jobs = pool.dispatched_jobs;
    est_item_cost_s = (if pool.est_item_cost < 0.0 then Float.nan else pool.est_item_cost);
    busy_s = Array.copy pool.busy_s;
    chunks_done = Array.copy pool.chunks_done;
    queue_wait = pool.queue_wait;
  }

(* Publish the pool's lifetime totals into the global registry (no-op
   when metrics are disabled). *)
let publish_stats (pool : pool) =
  if Obs_metrics.enabled () then begin
    Obs_metrics.incr (Obs_metrics.counter "parallel.pools") 1;
    if pool.clamped then Obs_metrics.incr (Obs_metrics.counter "parallel.pools_clamped") 1;
    Obs_metrics.set
      (Obs_metrics.gauge "parallel.requested_domains")
      (float_of_int pool.requested);
    Obs_metrics.set (Obs_metrics.gauge "parallel.effective_domains") (float_of_int pool.total);
    Obs_metrics.incr (Obs_metrics.counter "parallel.jobs") pool.jobs;
    Obs_metrics.incr (Obs_metrics.counter "parallel.jobs_inline") pool.inline_jobs;
    Obs_metrics.incr (Obs_metrics.counter "parallel.jobs_dispatched") pool.dispatched_jobs;
    Obs_metrics.incr
      (Obs_metrics.counter "parallel.chunks")
      (Array.fold_left ( + ) 0 pool.chunks_done);
    let busy = Array.fold_left ( +. ) 0.0 pool.busy_s in
    Obs_metrics.observe (Obs_metrics.histogram "parallel.busy_s_per_pool") busy;
    (* bucket-level merge: O(nonzero buckets), not O(total observations) *)
    Obs_metrics.add_histo ~src:pool.queue_wait
      (Obs_metrics.histogram "parallel.queue_wait_s")
  end

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  publish_stats pool;
  Obs_log.debug (fun () ->
      let s = stats pool in
      ( "parallel.pool.shutdown",
        [
          ("domains", string_of_int s.domains);
          ("jobs", string_of_int s.jobs);
          ("inline", string_of_int s.inline_jobs);
          ("dispatched", string_of_int s.dispatched_jobs);
          ("chunks", string_of_int (Array.fold_left ( + ) 0 s.chunks_done));
          ("busy_s", Printf.sprintf "%.6f" (Array.fold_left ( +. ) 0.0 s.busy_s));
        ] ))

let with_pool ?domains ?gate f =
  let pool = create ?domains ?gate () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- shared warm pool ------------------------------------------------ *)

let global_lock = Mutex.create ()
let global_ref = ref None

let global () =
  Mutex.protect global_lock (fun () ->
      match !global_ref with
      | Some p -> p
      | None ->
          let p = create () in
          at_exit (fun () -> shutdown p);
          global_ref := Some p;
          p)

(* --- job submission -------------------------------------------------- *)

(* Fold a finished job's measured busy time into the per-item cost
   estimate.  Only the submitting domain calls this, once per job. *)
let note_job_cost (pool : pool) ~items busy =
  if items > 0 && busy >= 0.0 then begin
    let sample = busy /. float_of_int items in
    pool.est_item_cost <-
      (if pool.est_item_cost < 0.0 then sample
       else ((1.0 -. ewma_alpha) *. pool.est_item_cost) +. (ewma_alpha *. sample))
  end

(* The serial gate: no workers to hand work to, or the calibrated work
   estimate says dispatch overhead would dominate. *)
let should_inline (pool : pool) ~items =
  pool.workers = []
  || (pool.gate && pool.est_item_cost >= 0.0
     && pool.est_item_cost *. float_of_int items < gate_threshold_s)

(* Inline execution on slot 0.  [Fun.protect] keeps the accounting
   honest when [body] raises: busy time and the chunk count land in the
   stats either way (they previously leaked on the exception path). *)
let run_inline (pool : pool) ~items body =
  pool.jobs <- pool.jobs + 1;
  pool.inline_jobs <- pool.inline_jobs + 1;
  let t0 = Clock.now_s () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now_s () -. t0 in
      pool.busy_s.(0) <- pool.busy_s.(0) +. dt;
      pool.chunks_done.(0) <- pool.chunks_done.(0) + 1;
      note_job_cost pool ~items dt)
    (fun () -> body 0 items)

(* First claim size: from the calibrated estimate when available
   (targeting [t_chunk_target] per chunk), bounded by a guided
   ~4-chunks-per-domain split so a bad estimate cannot serialize the
   job. *)
let initial_chunk (pool : pool) ~items ~min_chunk =
  let guided = max 1 (items / (4 * pool.total)) in
  let c =
    if pool.est_item_cost > 0.0 then
      let by_time = int_of_float (Float.ceil (t_chunk_target /. pool.est_item_cost)) in
      max 1 (min guided by_time)
    else guided
  in
  max min_chunk c

let run_range (pool : pool) ?(min_chunk = 1) ~items body =
  if items > 0 then
    if should_inline pool ~items then begin
      if pool.gate && pool.workers <> [] then
        Obs_log.debug (fun () ->
            ( "parallel.gate.inline",
              [
                ("items", string_of_int items);
                ("est_item_cost_s", Printf.sprintf "%.3e" pool.est_item_cost);
              ] ));
      run_inline pool ~items body
    end
    else begin
      let j =
        {
          body;
          items;
          posted_at = Clock.now_s ();
          min_chunk = max 1 min_chunk;
          next = 0;
          live = items;
          chunk = initial_chunk pool ~items ~min_chunk:(max 1 min_chunk);
          busy = 0.0;
          failed = None;
        }
      in
      Mutex.lock pool.lock;
      if pool.job <> None then begin
        Mutex.unlock pool.lock;
        invalid_arg "Parallel.run: pool already has a job in flight"
      end;
      pool.jobs <- pool.jobs + 1;
      pool.dispatched_jobs <- pool.dispatched_jobs + 1;
      pool.job <- Some j;
      Condition.broadcast pool.work;
      (* the caller participates *)
      claim_chunks pool ~slot:0 j;
      while j.live > 0 do
        Condition.wait pool.finished pool.lock
      done;
      note_job_cost pool ~items j.busy;
      Mutex.unlock pool.lock;
      match j.failed with Some e -> raise e | None -> ()
    end

let run pool ~chunks body =
  run_range pool ~items:chunks (fun lo hi ->
      for i = lo to hi - 1 do
        body i
      done)

let map_with_pool pool ?(min_chunk = 1) f a =
  let n = Array.length a in
  let out = Array.make n None in
  run_range pool ~min_chunk ~items:n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- Some (f i a.(i))
      done);
  Array.map (function Some v -> v | None -> assert false) out

let map ?pool ?domains ?min_chunk f a =
  let n = Array.length a in
  match pool with
  | Some p when size p > 1 && n > 1 -> map_with_pool p ?min_chunk f a
  | Some _ -> Array.mapi f a
  | None -> (
      match domains with
      | Some d ->
          let d = max 1 d in
          if d <= 1 || n <= 1 then Array.mapi f a
          else with_pool ~domains:(min d n) (fun p -> map_with_pool p ?min_chunk f a)
      | None ->
          if n <= 1 then Array.mapi f a
          else
            let p = global () in
            if size p > 1 then map_with_pool p ?min_chunk f a else Array.mapi f a)
