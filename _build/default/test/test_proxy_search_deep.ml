(* Deeper tests of the computation-proxy search: the relative-error
   weighting, zero-metric protection, determinism, and qcheck properties
   over randomized targets. *)

module Proxy_search = Siesta_synth.Proxy_search
module Block = Siesta_blocks.Block
module Counters = Siesta_perf.Counters
module K = Siesta_perf.Kernel
module Spec = Siesta_platform.Spec
module Rng = Siesta_util.Rng

let platform = Spec.platform_a

let target_of_kernel k = Counters.of_work platform.Spec.cpu (K.to_work k)

let test_deterministic () =
  let target = target_of_kernel (K.streaming ~label:"k" ~flops:3e6 ~bytes:2e7) in
  let a = Proxy_search.search ~platform target in
  let b = Proxy_search.search ~platform target in
  Alcotest.(check bool) "same solution" true (a.Proxy_search.x = b.Proxy_search.x)

let test_zero_msp_not_polluted () =
  (* a target with no mispredictions at all: the weighting must keep the
     solution's MSP negligible relative to its other metrics *)
  let target =
    Counters.of_array [| 1e7; 4e6; 2.5e6; 1e4; 1.5e6; 0.0 |]
  in
  let sol = Proxy_search.search ~platform target in
  Alcotest.(check bool) "MSP stays tiny" true
    (sol.Proxy_search.predicted.Counters.msp < 1e-3 *. sol.Proxy_search.predicted.Counters.ins)

let test_scaling_linearity () =
  (* a 10x larger target yields ~10x larger repetition counts *)
  let t1 = target_of_kernel (K.compute_bound ~label:"k" ~flops:1e6 ~div_frac:0.02) in
  let t10 = Counters.scale 10.0 t1 in
  let s1 = Proxy_search.search ~platform t1 in
  let s10 = Proxy_search.search ~platform t10 in
  let sum x = Array.fold_left ( +. ) 0.0 x in
  let ratio = sum s10.Proxy_search.x /. sum s1.Proxy_search.x in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f near 10" ratio) true
    (ratio > 8.0 && ratio < 12.0)

let test_error_matches_definition () =
  let target = target_of_kernel (K.streaming ~label:"k" ~flops:2e6 ~bytes:1e7) in
  let sol = Proxy_search.search ~platform target in
  let recomputed =
    Counters.mean_relative_error ~actual:sol.Proxy_search.predicted ~reference:target
  in
  Alcotest.(check (float 1e-12)) "error field" recomputed sol.Proxy_search.error

let test_tiny_targets_stay_feasible () =
  let rng = Rng.create 91 in
  for _ = 1 to 100 do
    let ins = float_of_int (10 + Rng.int rng 2000) in
    let target =
      Counters.of_array
        [|
          ins;
          ins *. (0.3 +. Rng.float rng 1.0);
          ins *. (0.1 +. Rng.float rng 0.3);
          ins *. Rng.float rng 0.01;
          ins *. (0.12 +. Rng.float rng 0.2);
          ins *. Rng.float rng 0.01;
        |]
    in
    let sol = Proxy_search.search ~platform target in
    match Block.validate_combination sol.Proxy_search.x with
    | Ok () -> ()
    | Error e -> Alcotest.failf "infeasible on tiny target: %s" e
  done

let test_all_platforms_solvable () =
  (* the target must be measured by the same platform's counters that
     micro-benchmark the blocks — mixing instruments is meaningless *)
  let kernel = K.streaming ~label:"k" ~flops:5e6 ~bytes:4e7 in
  List.iter
    (fun platform ->
      let target = Counters.of_work platform.Spec.cpu (K.to_work kernel) in
      let sol = Proxy_search.search ~platform target in
      Alcotest.(check bool)
        (Printf.sprintf "platform %s converges" platform.Spec.name)
        true
        (sol.Proxy_search.error < 0.05))
    Spec.all

(* qcheck: random block-cone targets are recovered within rounding *)
let qcheck_feasible_recovery =
  let gen =
    QCheck.Gen.(
      let* counts = array_repeat 11 (0 -- 20_000) in
      return (Array.map float_of_int counts))
  in
  QCheck.Test.make ~count:100
    ~name:"random feasible targets recovered (<1% error)"
    (QCheck.make ~print:(fun a -> QCheck.Print.(array float) a) gen)
    (fun x ->
      let x = Array.copy x in
      let s = ref 0.0 in
      for j = 0 to 8 do
        s := !s +. x.(j)
      done;
      x.(10) <- max x.(10) !s;
      let target = Proxy_search.predict ~platform ~x in
      target.Counters.ins = 0.0
      ||
      let sol = Proxy_search.search ~platform target in
      sol.Proxy_search.error < 0.01)

let qcheck_solution_always_valid =
  let gen =
    QCheck.Gen.(
      let* flops = 1_000 -- 10_000_000 in
      let* div_mil = 0 -- 100 in
      let* stream = bool in
      return
        (if stream then
           K.streaming ~label:"q" ~flops:(float_of_int flops)
             ~bytes:(8.0 *. float_of_int flops)
         else
           K.compute_bound ~label:"q" ~flops:(float_of_int flops)
             ~div_frac:(float_of_int div_mil /. 1000.0)))
  in
  QCheck.Test.make ~count:100 ~name:"solutions always satisfy the emitted-code constraints"
    (QCheck.make ~print:(fun k -> k.K.label) gen)
    (fun kernel ->
      let sol = Proxy_search.search ~platform (target_of_kernel kernel) in
      Result.is_ok (Block.validate_combination sol.Proxy_search.x))

let suite =
  [
    ("search is deterministic", `Quick, test_deterministic);
    ("zero-MSP targets stay clean", `Quick, test_zero_msp_not_polluted);
    ("solutions scale linearly with the target", `Quick, test_scaling_linearity);
    ("error field matches its definition", `Quick, test_error_matches_definition);
    ("tiny targets stay feasible", `Quick, test_tiny_targets_stay_feasible);
    ("all three platforms solvable", `Quick, test_all_platforms_solvable);
    QCheck_alcotest.to_alcotest qcheck_feasible_recovery;
    QCheck_alcotest.to_alcotest qcheck_solution_always_valid;
  ]
