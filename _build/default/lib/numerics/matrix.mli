(** Small dense row-major matrices.

    The proxy-search problems are tiny (6 metrics x 11 blocks), so this is a
    simple, allocation-friendly implementation rather than a BLAS binding. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val of_arrays : float array array -> t
(** Rows must be non-empty and rectangular. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Matrix product; dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [a * x]; [Array.length x] must equal [cols a]. *)

val col : t -> int -> float array
val row : t -> int -> float array

val scale_row : t -> int -> float -> unit
(** In-place multiplication of one row by a scalar. *)

val identity : int -> t

val pp : Format.formatter -> t -> unit
