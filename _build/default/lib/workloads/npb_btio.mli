(** NPB BT-IO: BT with full MPI-IO checkpointing (collective solution
    dumps every five steps plus a read-back verification).  Exercises the
    MPI-IO extension; not part of the paper's Table 3. *)

val default_timesteps : int

val program :
  ?timesteps:int -> nranks:int -> unit -> Siesta_mpi.Engine.ctx -> unit

val valid_procs : int -> bool
