(** Dependency-free domain pool for embarrassingly parallel per-rank work.

    The merge pipeline's per-rank stages (Sequitur construction, main-rule
    positioning, exact-main keying) are independent across ranks, so they
    fan out over OCaml 5 domains.  This module provides the pool: a fixed
    set of worker domains pulling chunks from a shared queue guarded by a
    [Mutex]/[Condition] pair.  The submitting domain participates in the
    work, so a pool of size [d] applies [d] domains in total ([d - 1]
    spawned workers plus the caller).

    {b Determinism.}  [map] writes each result into its input's slot, so
    the output is identical to the sequential [Array.mapi] no matter how
    chunks are scheduled — provided the mapped function itself is pure
    (all pipeline stages are).

    {b Sizing.}  The default pool size comes from the [SIESTA_NUM_DOMAINS]
    environment variable when set to a positive integer, otherwise from
    {!Domain.recommended_domain_count}.  Small inputs and 1-domain pools
    fall back to the plain sequential loop with no domain traffic at
    all.

    {b Observability.}  Pool creation logs the effective domain count
    and its source at info level ([SIESTA_LOG=info]).  Every pool
    tracks per-slot busy time, chunk counts and a queue-wait histogram
    ({!stats}); [shutdown] publishes lifetime totals to
    {!Siesta_obs.Metrics} when the registry is enabled, and per-chunk
    spans are emitted to {!Siesta_obs.Span} when tracing is on, so each
    worker domain renders as its own track in [chrome://tracing]. *)

type pool

val num_domains : unit -> int
(** Effective default parallelism: [SIESTA_NUM_DOMAINS] if set to a
    positive integer, else {!Domain.recommended_domain_count} (>= 1). *)

val num_domains_with_source : unit -> int * string
(** {!num_domains} plus where the value came from
    (["SIESTA_NUM_DOMAINS"] or ["recommended"]). *)

val create : ?domains:int -> unit -> pool
(** Spawn a pool of [domains] (default {!num_domains}) total domains;
    [domains - 1] workers are spawned, the caller is the last.  A pool of
    size [<= 1] spawns nothing and runs everything inline. *)

val size : pool -> int
(** Total domains the pool applies, caller included (>= 1). *)

val shutdown : pool -> unit
(** Terminate and join the workers.  Idempotent.  The pool must be idle
    (no [run]/[map] in flight). *)

val with_pool : ?domains:int -> (pool -> 'a) -> 'a
(** [create], apply, [shutdown] — also on exception. *)

val run : pool -> chunks:int -> (int -> unit) -> unit
(** [run pool ~chunks body] executes [body 0 .. body (chunks - 1)],
    distributing chunk indices over the pool's domains.  Re-raises the
    first exception any chunk raised (after all claimed chunks finish).
    Pools are not re-entrant: calling [run] from inside a running body
    raises [Invalid_argument]. *)

type stats = {
  domains : int;  (** total slots (caller + workers) *)
  jobs : int;  (** jobs submitted so far *)
  busy_s : float array;  (** per-slot seconds spent inside chunk bodies *)
  chunks_done : int array;  (** per-slot chunks executed *)
  queue_wait : Siesta_obs.Metrics.Histo.t;
      (** job-posting -> chunk-start latency, seconds (multi-domain jobs
          only; the 1-domain fast path records no per-chunk waits) *)
}

val stats : pool -> stats
(** Lifetime utilisation counters.  Slot 0 is the submitting caller,
    slots [1 .. domains-1] the spawned workers.  The arrays are copies;
    calling this while a job is in flight yields a best-effort
    snapshot. *)

val map : ?pool:pool -> ?domains:int -> ?min_chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.mapi].  With [?pool], uses that pool; otherwise a
    transient pool of [?domains] (default {!num_domains}) is created and
    shut down around the call.  Elements are grouped into chunks of at
    least [min_chunk] (default 1) consecutive indices.  Falls back to
    sequential [Array.mapi] when the pool has one domain or the input has
    fewer than two elements.  Output ordering is deterministic. *)
