(* Tests for siesta_analysis: communication matrices and topology
   detection. *)

module Comm_matrix = Siesta_analysis.Comm_matrix
module Topology = Siesta_analysis.Topology
module Event = Siesta_trace.Event
module Recorder = Siesta_trace.Recorder
module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype

let platform = Siesta_platform.Spec.platform_a
let impl = Siesta_platform.Mpi_impl.openmpi

let matrix_of_workload ?(nranks = 64) workload =
  let s = Siesta.Pipeline.spec ~workload ~nranks () in
  let traced = Siesta.Pipeline.trace s in
  Comm_matrix.of_recorder traced.Siesta.Pipeline.recorder

(* hand-built streams: rank r sends 2 x 100 bytes to r+1 *)
let ring_streams nranks =
  Array.make nranks
    [|
      Event.Send { Event.rel_peer = 1; tag = 0; dt = D.Byte; count = 100; comm = 0 };
      Event.Send { Event.rel_peer = 1; tag = 0; dt = D.Byte; count = 100; comm = 0 };
    |]

let test_matrix_accounting () =
  let m = Comm_matrix.of_streams ~nranks:4 (ring_streams 4) in
  Alcotest.(check int) "nranks" 4 (Comm_matrix.nranks m);
  Alcotest.(check int) "messages 0->1" 2 (Comm_matrix.messages m ~src:0 ~dst:1);
  Alcotest.(check int) "bytes 3->0 (wrap)" 200 (Comm_matrix.bytes m ~src:3 ~dst:0);
  Alcotest.(check int) "no reverse traffic" 0 (Comm_matrix.messages m ~src:1 ~dst:0);
  Alcotest.(check int) "total messages" 8 (Comm_matrix.total_messages m);
  Alcotest.(check int) "total bytes" 800 (Comm_matrix.total_bytes m);
  Alcotest.(check int) "edges" 4 (List.length (Comm_matrix.edges m))

let test_matrix_offsets () =
  let m = Comm_matrix.of_streams ~nranks:4 (ring_streams 4) in
  Alcotest.(check (list (pair int int))) "single +1 offset" [ (1, 8) ] (Comm_matrix.offsets m)

let test_matrix_wildcard_ignored () =
  let streams =
    [|
      [| Event.Recv { Event.rel_peer = Siesta_mpi.Call.any_source; tag = 0; dt = D.Int; count = 1; comm = 0 } |];
      [| Event.Send { Event.rel_peer = 3; tag = 0; dt = D.Int; count = 1; comm = 0 } |];
    |]
  in
  let m = Comm_matrix.of_streams ~nranks:2 streams in
  Alcotest.(check int) "only the send edge" 1 (Comm_matrix.total_messages m)

let test_matrix_render () =
  let m = Comm_matrix.of_streams ~nranks:4 (ring_streams 4) in
  let s = Comm_matrix.render m in
  Alcotest.(check bool) "renders" true (String.length s > 16);
  (* row 0: '.' '2' '.' '.' — 200 bytes = 10^2.3 *)
  Alcotest.(check bool) "heat digit" true (String.contains s '2')

let test_topology_ring () =
  let m = Comm_matrix.of_streams ~nranks:8 (ring_streams 8) in
  Alcotest.(check string) "ring" "ring" (Topology.to_string (Topology.classify m))

let test_topology_no_p2p () =
  let m = Comm_matrix.of_streams ~nranks:4 (Array.make 4 [| Event.Barrier { comm = 0 } |]) in
  Alcotest.(check bool) "no p2p" true (Topology.classify m = Topology.NoP2p)

let test_topology_of_workloads () =
  List.iter
    (fun (workload, expected) ->
      let m = matrix_of_workload workload in
      let got = Topology.classify m in
      Alcotest.(check string) workload expected (Topology.to_string got))
    [
      ("BT", "2-D grid (8 x 8)");
      ("SP", "2-D grid (8 x 8)");
      ("MG", "3-D grid (4 x 4 x 4)");
      ("CG", "butterfly (power-of-two exchanges)");
      ("IS", "no point-to-point traffic");
      ("Sweep3d", "2-D grid (16 x 4)");
    ]

let test_topology_dense () =
  (* everyone sends to everyone *)
  let nranks = 6 in
  let streams =
    Array.init nranks (fun _ ->
        Array.init (nranks - 1) (fun i ->
            Event.Send { Event.rel_peer = i + 1; tag = 0; dt = D.Int; count = 1; comm = 0 }))
  in
  let m = Comm_matrix.of_streams ~nranks streams in
  (* all offsets equally dominant: not a ring/grid; 30/36 edges -> dense *)
  Alcotest.(check bool) "dense" true (Topology.classify m = Topology.Dense)

(* ------------------------------------------------------------------ *)
(* Phases *)

module Phases = Siesta_analysis.Phases
module MPipe = Siesta_merge.Pipeline

let test_phases_detects_iterations () =
  let s = Siesta.Pipeline.spec ~iters:8 ~workload:"MG" ~nranks:16 () in
  let traced = Siesta.Pipeline.trace s in
  let merged = MPipe.merge_recorder traced.Siesta.Pipeline.recorder in
  let phases = Phases.detect merged in
  Alcotest.(check bool) "found phases" true (phases <> []);
  (* the dominant phase is the 8-iteration V-cycle loop *)
  (match phases with
  | p :: _ ->
      Alcotest.(check int) "iteration count" 8 p.Phases.iterations;
      Alcotest.(check bool) "non-trivial body" true (p.Phases.events_per_iteration > 10)
  | [] -> ());
  (* every rank belongs to some phase *)
  let covered =
    List.concat_map (fun p -> Siesta_merge.Rank_list.to_list p.Phases.ranks) phases
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all ranks in phases" 16 (List.length covered)

let test_phases_respects_threshold () =
  let stream =
    Array.concat
      (List.init 3 (fun _ ->
           [|
             Event.Barrier { comm = 0 };
             Event.Send { Event.rel_peer = 1; tag = 0; dt = D.Byte; count = 10; comm = 0 };
           |]))
  in
  let merged = MPipe.merge_streams ~nranks:2 [| stream; stream |] in
  Alcotest.(check (list pass)) "3 repeats below default threshold" []
    (Phases.detect merged);
  Alcotest.(check bool) "visible at min_iterations 3" true
    (Phases.detect ~min_iterations:3 merged <> [])

let test_phases_render () =
  let s = Siesta.Pipeline.spec ~iters:6 ~workload:"IS" ~nranks:8 () in
  let traced = Siesta.Pipeline.trace s in
  let merged = MPipe.merge_recorder traced.Siesta.Pipeline.recorder in
  let text = Phases.render merged in
  (* the first iteration's computation clusters differ (cold start), so
     at least the remaining 5 compress into one phase *)
  Alcotest.(check bool) "mentions iterations" true
    (String.length text > 0
    &&
    let needle = "iterations x" in
    let n = String.length text and m = String.length needle in
    let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
    go 0);
  (match Phases.detect merged with
  | p :: _ -> Alcotest.(check bool) "at least 5 iterations" true (p.Phases.iterations >= 5)
  | [] -> Alcotest.fail "no phases in IS")

let suite =
  [
    ("matrix accounting", `Quick, test_matrix_accounting);
    ("matrix offsets", `Quick, test_matrix_offsets);
    ("matrix ignores wildcard receives", `Quick, test_matrix_wildcard_ignored);
    ("matrix heat-map rendering", `Quick, test_matrix_render);
    ("topology: ring", `Quick, test_topology_ring);
    ("topology: collectives only", `Quick, test_topology_no_p2p);
    ("topology: all workloads classify correctly", `Slow, test_topology_of_workloads);
    ("topology: dense", `Quick, test_topology_dense);
    ("phases: iteration detection", `Quick, test_phases_detects_iterations);
    ("phases: threshold", `Quick, test_phases_respects_threshold);
    ("phases: rendering", `Quick, test_phases_render);
  ]
