let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let relative_error ~actual ~reference =
  if reference = 0.0 then (if actual = 0.0 then 0.0 else infinity)
  else abs_float (actual -. reference) /. abs_float reference

let mean_relative_error ~actual ~reference =
  let n = Array.length actual in
  if n <> Array.length reference then
    invalid_arg "Stats.mean_relative_error: length mismatch";
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. relative_error ~actual:actual.(i) ~reference:reference.(i)
    done;
    !acc /. float_of_int n
  end

let percent x = 100.0 *. x
