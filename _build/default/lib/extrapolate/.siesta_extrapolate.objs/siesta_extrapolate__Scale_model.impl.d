lib/extrapolate/scale_model.ml: Array Float Hashtbl List Marshal Option Printf Siesta_analysis Siesta_mpi Siesta_numerics Siesta_perf Siesta_trace String
