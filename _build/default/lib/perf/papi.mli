(** PAPI-like per-rank counter state.

    Each simulated rank owns one {!t}.  Computation phases are
    {!accumulate}d as they execute; the tracer calls {!read_delta} at each
    MPI-call boundary to obtain the counters of the just-finished
    computation event (the virtual [MPI_Compute] call of Section 2.3).
    Readings carry a small multiplicative noise, as real counters do —
    which is what makes the paper's clustering threshold meaningful. *)

type t

val create :
  cpu:Siesta_platform.Cpu.t -> noise:float -> rng:Siesta_util.Rng.t -> t
(** [noise] is the relative standard deviation applied to each metric on
    read (0 for exact readings). *)

val cpu : t -> Siesta_platform.Cpu.t

val accumulate : t -> Siesta_platform.Cpu.work -> unit
(** Execute a unit of work: counters advance, and the rank's computation
    time advances by the CPU model's pricing (retrieved via
    {!elapsed_seconds}). *)

val read_delta : t -> Counters.t
(** Counters accumulated since the previous [read_delta] (noisy), and
    reset the interval. *)

val elapsed_seconds : t -> float
(** Total computation seconds accumulated since creation (noise-free;
    this drives the simulated clock, while [read_delta] drives the trace). *)

val totals : t -> Counters.t
(** Noise-free counter totals since creation, independent of
    [read_delta] resets.  Used as the reference when scoring a proxy's
    computation fidelity. *)
