lib/analysis/topology.mli: Comm_matrix
