lib/perf/kernel.mli: Siesta_platform
