(* Self-contained HTML dashboard over one fidelity sweep.

   Same design constraints as the other viewers: one file, zero external
   requests, the curve embedded as plain JSON in a
   <script type="application/json" id="sweep-data"> block scrapeable by
   other tools, canvas rendering via the shared SiestaChart machinery
   (Siesta_obs.Html_embed).  Factors are powers of two, so every chart
   uses the log2 x-axis with ticks pinned to the swept schedule. *)

module Html_embed = Siesta_obs.Html_embed
module Divergence = Siesta_analysis.Divergence
module Pipeline = Siesta.Pipeline

let viewer_js =
  {js|
(function () {
  'use strict';
  var data = JSON.parse(document.getElementById('sweep-data').textContent);
  var pts = data.points;
  var factors = pts.map(function (p) { return p.factor; });

  function series(keys) {
    return keys.map(function (k) {
      return {
        name: k,
        points: pts.map(function (p) { return [p.factor, p[k]]; })
      };
    });
  }

  function renderAll() {
    var opts = { logX: true, xTicks: factors, xTickPrefix: 'x' };
    SiestaChart.linePlot('fid-chart', 'fid-legend',
      series(['time_error', 'timeline_distance', 'comm_matrix_dist', 'max_compute_mean']),
      Object.assign({ yLabel: 'fidelity error vs factor' }, opts));
    SiestaChart.linePlot('size-chart', 'size-legend',
      series(['proxy_bytes']),
      Object.assign({ yLabel: 'proxy size (bytes) vs factor' }, opts));
    SiestaChart.linePlot('cost-chart', 'cost-legend',
      series(['search_s', 'total_s']),
      Object.assign({ yLabel: 'synthesis seconds vs factor' }, opts));
  }

  window.addEventListener('resize', renderAll);
  renderAll();
})();
|js}

let render ?(title = "siesta fidelity sweep") (t : Sweep.t) =
  let b = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let kvs = Pipeline.spec_kvs t.Sweep.s_spec in
  let v k = Option.value ~default:"?" (List.assoc_opt k kvs) in
  p "<h1>%s</h1>\n" (Html_embed.html_escape title);
  p "<p>%s n=%s on %s/%s &middot; %d factor(s) &middot; %.4f s total</p>\n"
    (Html_embed.html_escape (v "workload"))
    (Html_embed.html_escape (v "nranks"))
    (Html_embed.html_escape (v "platform"))
    (Html_embed.html_escape (v "impl"))
    (List.length t.Sweep.s_points) t.Sweep.s_total_s;
  p "<h2>Fidelity errors</h2>\n<canvas id=\"fid-chart\"></canvas>\n";
  p "<div class=\"legend\" id=\"fid-legend\"></div>\n";
  p "<h2>Proxy size</h2>\n<canvas id=\"size-chart\"></canvas>\n";
  p "<div class=\"legend\" id=\"size-legend\"></div>\n";
  p "<h2>Synthesis cost</h2>\n<canvas id=\"cost-chart\"></canvas>\n";
  p "<div class=\"legend\" id=\"cost-legend\"></div>\n";
  p "<h2>Factors</h2>\n<table><thead><tr><th>factor</th><th>verdict</th>";
  p "<th>time err</th><th>timeline</th><th>comm L1</th><th>compute mean</th>";
  p "<th>bytes delta</th><th>proxy B</th><th>search s</th><th>cache</th></tr></thead>\n<tbody>\n";
  List.iter
    (fun (pt : Sweep.point) ->
      let r = pt.Sweep.p_report in
      let mean =
        List.fold_left
          (fun acc (e : Divergence.metric_err) -> Float.max acc e.Divergence.me_mean)
          0.0 r.Divergence.r_compute_errors
      in
      p
        "<tr><td>x%s</td><td>%s</td><td>%.4f</td><td>%.3e</td><td>%.3e</td><td>%.4f</td><td>%d</td><td>%d</td><td>%.4f</td><td>%s</td></tr>\n"
        (Html_embed.html_escape (Sweep.factor_str pt.Sweep.p_factor))
        (Html_embed.html_escape (Divergence.verdict_name pt.Sweep.p_verdict))
        r.Divergence.r_time_error r.Divergence.r_timeline_distance
        r.Divergence.r_comm_matrix_dist mean r.Divergence.r_bytes_delta
        pt.Sweep.p_proxy_bytes pt.Sweep.p_search_s
        (Html_embed.html_escape (String.concat "/" (List.map snd pt.Sweep.p_cache))))
    t.Sweep.s_points;
  p "</tbody></table>\n";
  Buffer.add_string b (Html_embed.data_block ~id:"sweep-data" (Sweep.to_json t));
  p "<script>%s</script>\n" Html_embed.chart_js;
  p "<script>%s</script>\n" viewer_js;
  Html_embed.page ~title ~css:Html_embed.dashboard_css ~body:(Buffer.contents b)

let write ?title t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?title t))
