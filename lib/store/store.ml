module Log = Siesta_obs.Log
module Metrics = Siesta_obs.Metrics

let manifest_magic = "siesta-store-manifest v1"

type t = {
  root : string;
  mutex : Mutex.t;
  bindings : (string, binding) Hashtbl.t;  (** key -> binding *)
}

and binding = { b_hash : string; b_kind : string; b_created : float; b_descr : string }

type entry = {
  e_key : string;
  e_hash : string;
  e_kind : string;
  e_created : float;
  e_descr : string;
}

let default_root () =
  match Sys.getenv_opt "SIESTA_STORE" with
  | Some r when String.trim r <> "" -> r
  | _ -> ".siesta-store"

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let objects_dir t = Filename.concat t.root "objects"
let tmp_dir t = Filename.concat t.root "tmp"
let manifest_path t = Filename.concat t.root "manifest"

let object_path t hash =
  let shard = String.sub hash 0 2 in
  Filename.concat (Filename.concat (objects_dir t) shard) (String.sub hash 2 (String.length hash - 2))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic write: stage under tmp/, fsync-free rename into place.  The
   destination either has the complete content or the old one. *)
let atomic_write t ~dest content =
  mkdir_p (Filename.dirname dest);
  mkdir_p (tmp_dir t);
  let tmp =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "w-%d-%d-%s" (Unix.getpid ()) (Hashtbl.hash (Domain.self ()))
         (Filename.basename dest))
  in
  let oc = open_out_bin tmp in
  (try output_string oc content
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp dest

(* ------------------------------------------------------------------ *)
(* Manifest (text, tab-separated, atomically rewritten) *)

let parse_manifest contents =
  let bindings = Hashtbl.create 64 in
  (match String.split_on_char '\n' contents with
  | header :: lines when header = manifest_magic ->
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match String.split_on_char '\t' line with
            | [ key; hash; kind; created; descr ] -> (
                match float_of_string_opt created with
                | Some created ->
                    Hashtbl.replace bindings key
                      { b_hash = hash; b_kind = kind; b_created = created;
                        b_descr = Scanf.unescaped descr }
                | None ->
                    Log.warn (fun () ->
                        ("store.manifest", [ ("bad_line", string_of_int (i + 2)) ])))
            | _ ->
                Log.warn (fun () ->
                    ("store.manifest", [ ("bad_line", string_of_int (i + 2)) ])))
        lines
  | _ :: _ | [] ->
      Log.warn (fun () -> ("store.manifest", [ ("error", "bad header; starting empty") ])));
  bindings

let render_manifest bindings =
  let b = Buffer.create 4096 in
  Buffer.add_string b manifest_magic;
  Buffer.add_char b '\n';
  let entries = Hashtbl.fold (fun key bd acc -> (key, bd) :: acc) bindings [] in
  let entries =
    List.sort
      (fun (k1, b1) (k2, b2) -> compare (b1.b_created, k1) (b2.b_created, k2))
      entries
  in
  List.iter
    (fun (key, bd) ->
      Buffer.add_string b
        (Printf.sprintf "%s\t%s\t%s\t%.6f\t%s\n" key bd.b_hash bd.b_kind bd.b_created
           (String.escaped bd.b_descr)))
    entries;
  Buffer.contents b

let save_manifest t = atomic_write t ~dest:(manifest_path t) (render_manifest t.bindings)

let open_ ?root () =
  let root = match root with Some r -> r | None -> default_root () in
  mkdir_p root;
  mkdir_p (Filename.concat root "objects");
  mkdir_p (Filename.concat root "tmp");
  let bindings =
    let path = Filename.concat root "manifest" in
    if Sys.file_exists path then parse_manifest (read_file path) else Hashtbl.create 64
  in
  { root; mutex = Mutex.create (); bindings }

let root t = t.root

(* ------------------------------------------------------------------ *)
(* Blobs *)

let c_put_bytes () = Metrics.counter "store.put_bytes"
let c_get_bytes () = Metrics.counter "store.get_bytes"

let put t blob =
  let hash = Hash.content_hash blob in
  with_lock t (fun () ->
      let dest = object_path t hash in
      if not (Sys.file_exists dest) then begin
        atomic_write t ~dest blob;
        if Metrics.enabled () then Metrics.incr (c_put_bytes ()) (String.length blob);
        Log.debug (fun () ->
            ( "store.put",
              [ ("hash", hash); ("bytes", string_of_int (String.length blob)) ] ))
      end);
  hash

let get t hash =
  with_lock t (fun () ->
      let path = object_path t hash in
      if not (Sys.file_exists path) then None
      else
        let blob = read_file path in
        if Hash.content_hash blob <> hash then begin
          Log.warn (fun () ->
              ("store.get", [ ("hash", hash); ("error", "content mismatch; dropping") ]));
          (try Sys.remove path with Sys_error _ -> ());
          None
        end
        else begin
          if Metrics.enabled () then Metrics.incr (c_get_bytes ()) (String.length blob);
          Some blob
        end)

let contains t hash = Sys.file_exists (object_path t hash)

(* The HTTP blob-upload path: never trust bytes off the wire.  A blob
   must be a well-formed codec frame (magic, schema, checksum) before it
   is admitted — otherwise a remote peer could seed the store with
   garbage that every later reader trips over. *)
let put_validated t blob =
  match Codec.unframe blob with
  | exception Codec.Corrupt msg -> Error (Printf.sprintf "corrupt frame: %s" msg)
  | _kind, _payload -> Ok (put t blob)

(* ------------------------------------------------------------------ *)
(* Manifest operations *)

let bind t ~key ~hash ~kind ~descr =
  with_lock t (fun () ->
      Hashtbl.replace t.bindings key
        { b_hash = hash; b_kind = kind; b_created = Unix.gettimeofday (); b_descr = descr };
      save_manifest t)

let resolve t ~key =
  with_lock t (fun () ->
      Option.map (fun b -> b.b_hash) (Hashtbl.find_opt t.bindings key))

let entries t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun key b acc ->
          { e_key = key; e_hash = b.b_hash; e_kind = b.b_kind; e_created = b.b_created;
            e_descr = b.b_descr }
          :: acc)
        t.bindings []
      |> List.sort (fun a b -> compare (a.e_created, a.e_key) (b.e_created, b.e_key)))

let starts_with ~prefix s =
  String.length prefix <= String.length s && String.sub s 0 (String.length prefix) = prefix

let rm t prefix =
  if prefix = "" then invalid_arg "Store.rm: empty prefix";
  with_lock t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key b acc ->
            if starts_with ~prefix key || starts_with ~prefix b.b_hash then key :: acc
            else acc)
          t.bindings []
      in
      List.iter (Hashtbl.remove t.bindings) victims;
      if victims <> [] then save_manifest t;
      List.length victims)

(* ------------------------------------------------------------------ *)
(* Maintenance *)

let iter_objects t f =
  let odir = objects_dir t in
  if Sys.file_exists odir then
    Array.iter
      (fun shard ->
        let sdir = Filename.concat odir shard in
        if Sys.is_directory sdir && Hash.is_hex shard && String.length shard = 2 then
          Array.iter
            (fun name -> f (shard ^ name) (Filename.concat sdir name))
            (Sys.readdir sdir))
      (Sys.readdir odir)

let size_bytes t =
  let total = ref 0 in
  iter_objects t (fun _hash path -> total := !total + (Unix.stat path).Unix.st_size);
  !total

let object_size t hash =
  match Unix.stat (object_path t hash) with
  | st -> Some st.Unix.st_size
  | exception Unix.Unix_error _ -> None

let objects t =
  let out = ref [] in
  iter_objects t (fun hash path -> out := (hash, (Unix.stat path).Unix.st_size) :: !out);
  List.sort compare !out

type verify_report = { v_objects : int; v_entries : int; v_issues : string list }

let verify t =
  with_lock t (fun () ->
      let objects = ref 0 in
      let issues = ref [] in
      let problem fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
      let kinds = Hashtbl.create 64 in
      iter_objects t (fun hash path ->
          incr objects;
          match read_file path with
          | exception Sys_error m -> problem "object %s: unreadable (%s)" hash m
          | blob ->
              if Hash.content_hash blob <> hash then
                problem "object %s: content does not match its name" hash
              else (
                match Codec.unframe blob with
                | kind, _payload -> Hashtbl.replace kinds hash kind
                | exception Codec.Corrupt m -> problem "object %s: %s" hash m));
      let nentries = ref 0 in
      Hashtbl.iter
        (fun key b ->
          incr nentries;
          match Hashtbl.find_opt kinds b.b_hash with
          | None ->
              if not (Sys.file_exists (object_path t b.b_hash)) then
                problem "entry %s: missing blob %s" key b.b_hash
              else problem "entry %s: blob %s failed verification" key b.b_hash
          | Some kind ->
              if kind <> b.b_kind then
                problem "entry %s: kind %S but blob %s is %S" key b.b_kind b.b_hash kind)
        t.bindings;
      { v_objects = !objects; v_entries = !nentries; v_issues = List.rev !issues })

type gc_stats = { live : int; swept : int; freed_bytes : int }

let gc t =
  with_lock t (fun () ->
      let marked = Hashtbl.create 64 in
      Hashtbl.iter (fun _key b -> Hashtbl.replace marked b.b_hash ()) t.bindings;
      let live = ref 0 and swept = ref 0 and freed = ref 0 in
      let victims = ref [] in
      iter_objects t (fun hash path ->
          if Hashtbl.mem marked hash then incr live
          else victims := (hash, path) :: !victims);
      List.iter
        (fun (hash, path) ->
          let bytes = (Unix.stat path).Unix.st_size in
          (try
             Sys.remove path;
             incr swept;
             freed := !freed + bytes;
             Log.debug (fun () -> ("store.gc", [ ("swept", hash) ]))
           with Sys_error m ->
             Log.warn (fun () -> ("store.gc", [ ("hash", hash); ("error", m) ])));
          (* drop the shard dir when it just became empty *)
          let sdir = Filename.dirname path in
          match Sys.readdir sdir with
          | [||] -> ( try Unix.rmdir sdir with Unix.Unix_error _ -> ())
          | _ -> ())
        !victims;
      (* stale staging files from crashed writers *)
      let tdir = tmp_dir t in
      if Sys.file_exists tdir then
        Array.iter
          (fun name ->
            let path = Filename.concat tdir name in
            try Sys.remove path with Sys_error _ -> ())
          (Sys.readdir tdir);
      { live = !live; swept = !swept; freed_bytes = !freed })
