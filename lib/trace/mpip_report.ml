type function_stats = {
  name : string;
  calls : int;
  total_bytes : int;
  min_bytes : int;
  max_bytes : int;
}

type t = {
  nranks : int;
  total_events : int;
  comm_events : int;
  compute_events : int;
  per_function : function_stats list;
  size_histogram : (int * int) list;
  per_rank_events : int array;
}

let bucket_of bytes =
  let rec go b = if b >= bytes || b >= 1 lsl 30 then b else go (2 * b) in
  go 1

let of_streams ~nranks streams =
  let funcs : (string, function_stats) Hashtbl.t = Hashtbl.create 32 in
  let hist : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let comm = ref 0 and compute = ref 0 in
  let per_rank_events = Array.make nranks 0 in
  for rank = 0 to nranks - 1 do
    let evs = streams.(rank) in
    per_rank_events.(rank) <- Array.length evs;
    Array.iter
      (fun ev ->
        if Event.is_compute ev then incr compute else incr comm;
        let name = Event.name ev in
        let bytes = Event.payload_bytes ev in
        (match Hashtbl.find_opt funcs name with
        | Some s ->
            Hashtbl.replace funcs name
              {
                s with
                calls = s.calls + 1;
                total_bytes = s.total_bytes + bytes;
                min_bytes = min s.min_bytes bytes;
                max_bytes = max s.max_bytes bytes;
              }
        | None ->
            Hashtbl.replace funcs name
              { name; calls = 1; total_bytes = bytes; min_bytes = bytes; max_bytes = bytes });
        if Event.is_p2p ev && bytes > 0 then begin
          let b = bucket_of bytes in
          Hashtbl.replace hist b (1 + Option.value ~default:0 (Hashtbl.find_opt hist b))
        end)
      evs
  done;
  {
    nranks;
    total_events = !comm + !compute;
    comm_events = !comm;
    compute_events = !compute;
    per_function =
      Hashtbl.fold (fun _ s acc -> s :: acc) funcs []
      |> List.sort (fun a b -> compare (b.calls, a.name) (a.calls, b.name));
    size_histogram =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) hist [] |> List.sort compare;
    per_rank_events;
  }

let build recorder =
  let nranks = Recorder.nranks recorder in
  of_streams ~nranks (Array.init nranks (Recorder.events recorder))

let render t =
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "@--- Siesta trace summary (mpiP-style) ---------------------------\n";
  p "ranks               : %d\n" t.nranks;
  p "events              : %d (%d communication, %d computation)\n" t.total_events t.comm_events
    t.compute_events;
  let min_r = Array.fold_left min max_int t.per_rank_events in
  let max_r = Array.fold_left max 0 t.per_rank_events in
  p "events per rank     : min %d, max %d\n" min_r max_r;
  p "\n@--- Aggregate calls by function ----------------------------------\n";
  p "%-16s %10s %14s %12s %12s\n" "Function" "Calls" "Total bytes" "Min" "Max";
  List.iter
    (fun s ->
      p "%-16s %10d %14d %12d %12d\n" s.name s.calls s.total_bytes s.min_bytes s.max_bytes)
    t.per_function;
  if t.size_histogram <> [] then begin
    p "\n@--- Point-to-point message size histogram ------------------------\n";
    p "%-14s %10s\n" "<= bytes" "messages";
    List.iter (fun (b, n) -> p "%-14d %10d\n" b n) t.size_histogram
  end;
  Buffer.contents buf

let print t = print_string (render t)
