module Counters = Siesta_perf.Counters
module Grammar = Siesta_grammar.Grammar

type t = {
  nranks : int;
  streams : Event.t array array;
  centroids : (Counters.t * int) array;
}

type packed = {
  p_nranks : int;
  p_defs : Event.t array;
  p_codes : Soa.buf array;
  p_centroids : (Counters.t * int) array;
  p_grammars : Grammar.t array option;
}

let centroids_of_recorder recorder =
  let table = Recorder.compute_table recorder in
  Array.init (Compute_table.cluster_count table) (fun cid ->
      (Compute_table.centroid table cid, Compute_table.members table cid))

let of_recorder recorder =
  let nranks = Recorder.nranks recorder in
  {
    nranks;
    streams = Array.init nranks (Recorder.events recorder);
    centroids = centroids_of_recorder recorder;
  }

let pack recorder =
  let nranks = Recorder.nranks recorder in
  match Recorder.mode recorder with
  | Recorder.Streamed ->
      {
        p_nranks = nranks;
        p_defs = Recorder.event_defs recorder;
        p_codes = Array.init nranks (Recorder.codes recorder);
        p_centroids = centroids_of_recorder recorder;
        p_grammars = Some (Recorder.online_grammars recorder);
      }
  | Recorder.Boxed ->
      let intern = Soa.Intern.create () in
      let p_codes =
        Array.init nranks (fun r ->
            let evs = Recorder.events recorder r in
            let b = Soa.create ~capacity:(Array.length evs) () in
            Array.iter (fun ev -> Soa.append b (Soa.Intern.intern intern ev)) evs;
            b)
      in
      {
        p_nranks = nranks;
        p_defs = Soa.Intern.defs intern;
        p_codes;
        p_centroids = centroids_of_recorder recorder;
        p_grammars = None;
      }

let of_packed p =
  {
    nranks = p.p_nranks;
    streams =
      Array.map
        (fun codes ->
          Array.init (Soa.length codes) (fun i -> p.p_defs.(Soa.unsafe_get codes i)))
        p.p_codes;
    centroids = p.p_centroids;
  }

let to_packed t =
  let intern = Soa.Intern.create () in
  let p_codes =
    Array.map
      (fun evs ->
        let b = Soa.create ~capacity:(max 16 (Array.length evs)) () in
        Array.iter (fun ev -> Soa.append b (Soa.Intern.intern intern ev)) evs;
        b)
      t.streams
  in
  {
    p_nranks = t.nranks;
    p_defs = Soa.Intern.defs intern;
    p_codes;
    p_centroids = t.centroids;
    p_grammars = None;
  }

let compute_table t = Compute_table.restore t.centroids
let packed_compute_table p = Compute_table.restore p.p_centroids
let packed_total_events p = Array.fold_left (fun acc b -> acc + Soa.length b) 0 p.p_codes

(* ------------------------------------------------------------------ *)
(* Text formats.

   v1 is the historical boxed layout: one event key per line per rank.
   v2 is the streamed layout that matches the SoA representation: the
   distinct event definitions once, then per-rank code chunks of at most
   [chunk_codes] codes per line, so both writer and reader work in
   bounded batches without materializing boxed events. *)

let chunk_codes = 8192

let centroid_lines buf centroids =
  Array.iteri
    (fun cid (c, members) ->
      let a = Counters.to_array c in
      Printf.ksprintf (Buffer.add_string buf)
        "%d %.17g %.17g %.17g %.17g %.17g %.17g %d\n" cid a.(0) a.(1) a.(2) a.(3) a.(4) a.(5)
        members)
    centroids

let to_string t =
  let buf = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "siesta-trace v1\n";
  p "nranks %d\n" t.nranks;
  p "compute-table %d\n" (Array.length t.centroids);
  centroid_lines buf t.centroids;
  Array.iteri
    (fun rank evs ->
      p "rank %d %d\n" rank (Array.length evs);
      Array.iter
        (fun ev ->
          Buffer.add_string buf (Event.to_key ev);
          Buffer.add_char buf '\n')
        evs)
    t.streams;
  Buffer.contents buf

let to_string_packed pk =
  let buf = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "siesta-trace v2\n";
  p "nranks %d\n" pk.p_nranks;
  p "compute-table %d\n" (Array.length pk.p_centroids);
  centroid_lines buf pk.p_centroids;
  p "events %d\n" (Array.length pk.p_defs);
  Array.iter
    (fun ev ->
      Buffer.add_string buf (Event.to_key ev);
      Buffer.add_char buf '\n')
    pk.p_defs;
  Array.iteri
    (fun rank codes ->
      let n = Soa.length codes in
      p "rank %d %d\n" rank n;
      let i = ref 0 in
      while !i < n do
        let len = min chunk_codes (n - !i) in
        p "chunk %d\n" len;
        for j = !i to !i + len - 1 do
          if j > !i then Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int (Soa.unsafe_get codes j))
        done;
        Buffer.add_char buf '\n';
        i := !i + len
      done)
    pk.p_codes;
  Buffer.contents buf

(* Corrupt or truncated input must surface as [Failure "Trace_io: …"],
   never as a leaked [Scanf.Scan_failure] / [End_of_file] /
   [Invalid_argument] from the innards of the parser — callers (the CLI,
   the artifact store's cache-miss fallback) match on [Failure] to turn
   damage into a clean diagnostic. *)
let wrap_parse parse =
  try parse () with
  | Failure msg when String.length msg >= 9 && String.sub msg 0 9 = "Trace_io:" ->
      failwith msg
  | Scanf.Scan_failure msg -> failwith (Printf.sprintf "Trace_io: malformed line (%s)" msg)
  | End_of_file | Failure _ | Invalid_argument _ ->
      failwith "Trace_io: truncated or corrupt trace file"

let parse_header next =
  let nranks = Scanf.sscanf (next ()) "nranks %d" Fun.id in
  if nranks <= 0 then failwith "Trace_io: bad rank count";
  let n_clusters = Scanf.sscanf (next ()) "compute-table %d" Fun.id in
  if n_clusters < 0 then failwith "Trace_io: bad cluster count";
  let centroids =
    Array.init n_clusters (fun expect ->
        Scanf.sscanf (next ()) "%d %g %g %g %g %g %g %d"
          (fun cid a b c d e f members ->
            if cid <> expect then failwith "Trace_io: cluster ids out of order";
            (Counters.of_array [| a; b; c; d; e; f |], members)))
  in
  (nranks, centroids)

let parse_v1 next =
  let nranks, centroids = parse_header next in
  let streams =
    Array.init nranks (fun expect ->
        let n =
          Scanf.sscanf (next ()) "rank %d %d" (fun r n ->
              if r <> expect then failwith "Trace_io: ranks out of order";
              if n < 0 then failwith "Trace_io: bad event count";
              n)
        in
        Array.init n (fun _ -> Event.of_key (next ())))
  in
  to_packed { nranks; streams; centroids }

let parse_v2 next =
  let p_nranks, p_centroids = parse_header next in
  let n_defs = Scanf.sscanf (next ()) "events %d" Fun.id in
  if n_defs < 0 then failwith "Trace_io: bad event-definition count";
  let p_defs = Array.init n_defs (fun _ -> Event.of_key (next ())) in
  let p_codes =
    Array.init p_nranks (fun expect ->
        let total =
          Scanf.sscanf (next ()) "rank %d %d" (fun r n ->
              if r <> expect then failwith "Trace_io: ranks out of order";
              if n < 0 then failwith "Trace_io: bad event count";
              n)
        in
        let b = Soa.create ~capacity:(max 16 total) () in
        while Soa.length b < total do
          let declared = Scanf.sscanf (next ()) "chunk %d" Fun.id in
          if declared <= 0 then failwith "Trace_io: bad chunk length";
          if Soa.length b + declared > total then
            failwith
              (Printf.sprintf "Trace_io: chunk overruns rank %d (declared %d codes, %d expected)"
                 expect declared (total - Soa.length b));
          let line = next () in
          let got = ref 0 in
          String.split_on_char ' ' line
          |> List.iter (fun tok ->
                 if tok <> "" then begin
                   let code =
                     match int_of_string_opt tok with
                     | Some c -> c
                     | None -> failwith (Printf.sprintf "Trace_io: bad event code %S" tok)
                   in
                   if code < 0 || code >= n_defs then
                     failwith
                       (Printf.sprintf "Trace_io: event code %d out of range (0..%d)" code
                          (n_defs - 1));
                   Soa.append b code;
                   incr got
                 end);
          if !got <> declared then
            failwith
              (Printf.sprintf "Trace_io: truncated chunk in rank %d (declared %d codes, got %d)"
                 expect declared !got)
        done;
        b)
  in
  { p_nranks; p_defs; p_codes; p_centroids; p_grammars = None }

let of_string_packed s =
  wrap_parse @@ fun () ->
  if String.length s >= 4 && String.sub s 0 4 = "SSB1" then
    failwith
      "Trace_io: binary siesta store blob (decode it with the store codec, not the text loader)";
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> failwith "Trace_io: unexpected end of file"
    | l :: rest ->
        lines := rest;
        l
  in
  match next () with
  | "siesta-trace v1" -> parse_v1 next
  | "siesta-trace v2" -> parse_v2 next
  | _ -> failwith "Trace_io: bad magic or version"

let of_string s = of_packed (of_string_packed s)

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let save_packed pk ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_packed pk))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let load_packed ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string_packed (really_input_string ic (in_channel_length ic)))
