(** Persistent run ledger: one schema-versioned record per pipeline
    invocation, appended into the content-addressed artifact store.

    Each record is a JSON document inside a {!Siesta_store.Codec} frame
    of kind ["run"] (so [store verify] checks ledger records like any
    stage blob) bound in the manifest under a content hash of its
    descriptor, [run #<seq> <kind> id=<id> t=<time>].  Records carry
    everything needed to compare two runs after the fact: provenance
    (git describe, argv, the SIESTA_* environment), the spec that ran,
    per-stage cache keys and outcomes, stage timings, merge-scheduler
    deltas, heap statistics, the full metrics snapshot, and the
    divergence verdict when one was computed.

    Emission is gated exactly like the other telemetry streams: library
    code calls {!emit} unconditionally, and nothing is written until a
    front end installs a sink with {!set_sink} (the CLI arms it whenever
    [--cache] is active, the bench driver points it at a bench-local
    root).  See {!Regression} for the compare path and {!Trend_html} for
    the dashboard. *)

val schema_version : int
(** Version of the record's field layout (inside the JSON document —
    independent of [Codec.schema_version], which frames the container).
    {!decode} refuses records from a {e newer} schema and keeps reading
    older ones. *)

val run_kind : string
(** The codec/manifest kind, ["run"]. *)

type fidelity = {
  lf_verdict : string;  (** [Divergence.verdict_name] *)
  lf_lossless : bool;
  lf_time_error : float;
  lf_timeline_distance : float;
  lf_comm_matrix_dist : float;
  lf_max_compute_mean : float;  (** worst per-metric mean compute error *)
}

(** One measured point of a factor sweep (schema v2): the fidelity
    verdict and error measures of the proxy synthesized at [sp_factor],
    plus its size, search cost and cache outcomes.  Counts are floats so
    the whole point round-trips through the JSON number spelling. *)
type sweep_point = {
  sp_factor : float;  (** computation-shrinking factor (1 = unshrunken) *)
  sp_fidelity : fidelity;  (** factor-aware verdict + error measures *)
  sp_count_delta : float;  (** sum of per-call-kind count deltas *)
  sp_bytes_delta : float;  (** sum of per-call-kind byte deltas *)
  sp_compute_p95 : float;  (** worst per-metric p95 per-event compute error *)
  sp_compute_max : float;  (** worst per-metric max per-event compute error *)
  sp_proxy_bytes : float;  (** encoded proxy IR size *)
  sp_search_s : float;  (** proxy-search (synthesize stages) wall seconds *)
  sp_total_s : float;  (** whole synth+diff wall seconds for the point *)
  sp_cache : (string * string) list;  (** per-stage cache outcomes *)
}

(** Outcome of the static communication check (schema v3) — what
    [runs compare] gates on via the [check.*] dimensions. *)
type check = {
  lc_verdict : string;  (** [Comm_check.verdict_name]: "clean"/"violated" *)
  lc_violations : int;  (** total violations across the three checks *)
  lc_reasons : string list;  (** the checker's reason strings *)
}

type record = {
  r_schema : int;
  r_id : string;  (** {!Siesta_obs.Run_id} of the emitting process *)
  r_seq : int;  (** per-store sequence number, assigned by {!append} *)
  r_kind : string;
      (** ["trace"], ["synth"], ["diff"], ["sweep"], ["check"] or
          ["bench"] *)
  r_time : float;  (** unix time of emission *)
  r_git : string;  (** [git describe --always --dirty], or ["unknown"] *)
  r_argv : string list;
  r_env : (string * string) list;  (** the SIESTA_* knobs that were set *)
  r_spec : (string * string) list;  (** workload, nranks, seed, ... *)
  r_cache : (string * string) list;  (** per-stage outcomes, keys, hashes *)
  r_timings : (string * float) list;  (** stage wall seconds, in order *)
  r_sched : (string * float) list;  (** flattened merge_sched deltas *)
  r_heap : (string * float) list;  (** [Gc.quick_stat] highlights *)
  r_metrics : Siesta_obs.Json.t;  (** full [Metrics.to_json] snapshot *)
  r_fidelity : fidelity option;  (** present on ["diff"] records *)
  r_sweep : sweep_point list;
      (** the factor curve of a ["sweep"] record; [[]] everywhere else
          (and on records written before schema v2) *)
  r_check : check option;
      (** present on ["check"] records and on ["diff"] records that ran
          the static checker; [None] on records written before
          schema v3 *)
}

val make :
  kind:string ->
  ?spec:(string * string) list ->
  ?cache:(string * string) list ->
  ?timings:(string * float) list ->
  ?sched:(string * float) list ->
  ?fidelity:fidelity ->
  ?sweep:sweep_point list ->
  ?check:check ->
  unit ->
  record
(** Capture a record of the current process state: run id, time, git
    describe (resolved once per process), argv, environment, heap stats
    and metrics snapshot are filled in; the caller provides the
    run-shaped fields.  [nan] timings/sched values are dropped (they
    have no JSON spelling).  [r_seq] is 0 until {!append} assigns it. *)

(** {1 Serialization} *)

val encode : record -> string
(** The JSON document (not yet framed — {!append} frames it). *)

val decode : string -> record
(** Inverse of {!encode}; unknown fields are ignored so older readers
    survive additive schema growth.
    @raise Failure on malformed input or a newer [ledger_schema]. *)

(** {1 Store I/O} *)

val append : Siesta_store.Store.t -> record -> record
(** Assign the next sequence number (max existing + 1, monotone across
    {!gc}), frame, [put] and [bind] the record; returns it with [r_seq]
    filled in. *)

val runs : Siesta_store.Store.t -> record list
(** All decodable run records, ordered by sequence number.  Undecodable
    ones (corrupt blob, newer schema) are skipped with a warning —
    history stays readable even if one record is damaged. *)

val find : Siesta_store.Store.t -> string -> record option
(** Select a record: an integer selects by sequence number, anything
    else is a run-id prefix (the newest match wins, since every record
    of one process shares its id). *)

val gc : Siesta_store.Store.t -> keep:int -> int
(** Unbind all but the newest [keep] run records; returns how many were
    dropped.  Blobs are reclaimed by the next [Store.gc] — stage
    artifacts and their bindings are never touched. *)

(** {1 Emission sink} *)

val set_sink : Siesta_store.Store.t option -> unit
(** Arm (or disarm) the global emission sink. *)

val sink : unit -> Siesta_store.Store.t option

val emit : (unit -> record) -> unit
(** Append [thunk ()] to the sink; a no-op that never forces the thunk
    when no sink is installed, and logs (rather than raises) on append
    failure — telemetry must not fail the pipeline. *)
