examples/shrunk_proxy.ml: List Printf Siesta Siesta_mpi Siesta_util
