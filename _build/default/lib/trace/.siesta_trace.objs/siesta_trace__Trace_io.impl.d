lib/trace/trace_io.ml: Array Buffer Compute_table Event Fun Printf Recorder Scanf Siesta_perf String
