lib/perf/kernel.ml: Float Siesta_platform
