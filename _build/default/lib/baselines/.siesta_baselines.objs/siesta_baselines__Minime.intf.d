lib/baselines/minime.mli: Siesta_perf Siesta_platform
