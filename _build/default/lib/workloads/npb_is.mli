(** NPB IS (integer sort), class D shape.  Each iteration: local bucket
    counting, an allreduce of the bucket histogram, an alltoall of the
    exchange sizes and an alltoallv of the keys.  Very few, very large
    communication events — the reason IS traces are kilobytes where BT
    traces are gigabytes in Table 3. *)

val default_iterations : int
val total_keys : int
val n_buckets : int

val program :
  ?iterations:int -> nranks:int -> unit -> Siesta_mpi.Engine.ctx -> unit

val valid_procs : int -> bool
(** Powers of two only. *)
