lib/analysis/comm_matrix.ml: Array Buffer Char Hashtbl List Option Printf Siesta_mpi Siesta_trace
