lib/perf/papi.mli: Counters Siesta_platform Siesta_util
