module Engine = Siesta_mpi.Engine
module Counters = Siesta_perf.Counters
module Recorder = Siesta_trace.Recorder
module Proxy_ir = Siesta_synth.Proxy_ir

let time_error ~estimated ~original =
  if original = 0.0 then 0.0 else abs_float (estimated -. original) /. original

let counter_error ~original ~proxy =
  let po = original.Engine.per_rank_counters and pp = proxy.Engine.per_rank_counters in
  let n = Array.length po in
  if n = 0 || n <> Array.length pp then invalid_arg "Evaluate.counter_error: rank mismatch";
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. Counters.mean_relative_error ~actual:pp.(r) ~reference:po.(r)
  done;
  !acc /. float_of_int n

let per_metric_errors ~original ~proxy =
  let po = original.Engine.per_rank_counters and pp = proxy.Engine.per_rank_counters in
  let n = Array.length po in
  if n = 0 || n <> Array.length pp then invalid_arg "Evaluate.per_metric_errors: rank mismatch";
  List.map
    (fun metric ->
      let acc = ref 0.0 and used = ref 0 in
      for r = 0 to n - 1 do
        let reference = Counters.get po.(r) metric in
        if reference <> 0.0 then begin
          incr used;
          acc := !acc +. (abs_float (Counters.get pp.(r) metric -. reference) /. reference)
        end
      done;
      (metric, if !used = 0 then 0.0 else !acc /. float_of_int !used))
    Counters.all_metrics

type table3_row = {
  program : string;
  processes : int;
  trace_bytes : int;
  size_c_bytes : int;
  overhead : float;
  error : float;
}

let table3_row (artifact : Pipeline.artifact) =
  let traced = artifact.Pipeline.traced in
  let s = traced.Pipeline.run_spec in
  let proxy_run =
    Pipeline.run_proxy artifact ~platform:s.Pipeline.platform ~impl:s.Pipeline.impl
  in
  {
    program = s.Pipeline.workload.Siesta_workloads.Registry.name;
    processes = s.Pipeline.nranks;
    trace_bytes = Recorder.raw_trace_bytes traced.Pipeline.recorder;
    size_c_bytes = Proxy_ir.size_c_bytes artifact.Pipeline.proxy;
    overhead = traced.Pipeline.overhead;
    error = counter_error ~original:traced.Pipeline.original ~proxy:proxy_run;
  }

let mean l = if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
