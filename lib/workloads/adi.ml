(* Shared ADI (alternating direction implicit) skeleton used by the BT and
   SP pseudo-applications.  Both NPB codes follow the same outer shape on a
   square process grid: exchange faces with the four grid neighbours, then
   sweep line solves through x and y as software pipelines (receive the
   boundary from the upstream rank, factor the local lines, forward the
   boundary downstream; the back-substitution runs the pipeline in
   reverse), with the z solve local to each rank.  They differ in the
   per-cell work, the boundary volumes, and the number of timesteps. *)

module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module K = Siesta_perf.Kernel

type params = {
  grid_n : int;  (* global grid points per dimension *)
  flops_per_cell_rhs : float;
  flops_per_cell_solve : float;  (* one directional solve *)
  boundary_doubles_per_line : int;  (* pipeline message size per grid line *)
  face_vars : int;  (* variables exchanged in copy_faces *)
  div_frac : float;
  timesteps : int;
  io_interval : int;  (* 0 = no I/O; otherwise collective solution dump
                         every [io_interval] steps (the BT-IO "full" mode) *)
}

let bt_params ~timesteps =
  {
    grid_n = 408;  (* class D *)
    flops_per_cell_rhs = 150.0;
    flops_per_cell_solve = 230.0;
    boundary_doubles_per_line = 25;  (* 5x5 block boundary *)
    face_vars = 5;
    div_frac = 0.02;
    timesteps;
    io_interval = 0;
  }

let btio_params ~timesteps = { (bt_params ~timesteps) with io_interval = 5 }

let sp_params ~timesteps =
  {
    grid_n = 408;
    flops_per_cell_rhs = 120.0;
    flops_per_cell_solve = 90.0;
    boundary_doubles_per_line = 5;  (* scalar pentadiagonal boundary *)
    face_vars = 5;
    div_frac = 0.05;
    timesteps;
    io_interval = 0;
  }

let tag_face = 10
let tag_sweep_fwd = 20
let tag_sweep_bwd = 21

let program params ~nranks ctx =
  let q = Common.square_side nranks in
  let rank = E.rank ctx in
  let px = rank mod q and py = rank / q in
  let world = E.comm_world ctx in
  let nc = params.grid_n / q in
  let cells = float_of_int (nc * nc * params.grid_n) in
  let face_count = nc * params.grid_n * params.face_vars in
  let line_count = nc * params.boundary_doubles_per_line * params.grid_n / q in
  let rhs_kernel =
    K.streaming ~label:"rhs" ~flops:(params.flops_per_cell_rhs *. cells)
      ~bytes:(10.0 *. 8.0 *. cells)
  in
  let solve_stage dir_cells =
    {
      (K.streaming ~label:"solve"
         ~flops:(params.flops_per_cell_solve *. dir_cells)
         ~bytes:(6.0 *. 8.0 *. dir_cells))
      with
      K.div_frac = params.div_frac;
    }
  in
  let backsub_stage dir_cells =
    K.streaming ~label:"backsub"
      ~flops:(0.4 *. params.flops_per_cell_solve *. dir_cells)
      ~bytes:(4.0 *. 8.0 *. dir_cells)
  in
  let add_kernel =
    K.streaming ~label:"add" ~flops:(5.0 *. cells) ~bytes:(2.0 *. 8.0 *. cells)
  in
  (* copy_faces: non-blocking exchange with the four grid neighbours.  On
     a 1x1 grid every periodic neighbour is the rank itself, so there is
     no exchange to do — skip instead of emitting four self-send pairs. *)
  let copy_faces () =
    if q > 1 then begin
    let reqs = ref [] in
    let neighbor dx dy = ((py + dy + q) mod q * q) + ((px + dx + q) mod q) in
    let dirs = [ (1, 0); (-1, 0); (0, 1); (0, -1) ] in
    List.iter
      (fun (dx, dy) ->
        reqs := E.irecv ctx ~src:(neighbor dx dy) ~tag:tag_face ~dt:D.Double ~count:face_count
                :: !reqs)
      dirs;
    List.iter
      (fun (dx, dy) ->
        reqs := E.isend ctx ~dest:(neighbor dx dy) ~tag:tag_face ~dt:D.Double ~count:face_count
                :: !reqs)
      dirs;
    E.waitall ctx (List.rev !reqs)
    end
  in
  (* A pipelined directional solve.  [coord]/[extent] select the pipeline
     axis; upstream/downstream are the neighbouring ranks along it. *)
  let sweep ~coord ~extent ~upstream ~downstream =
    let dir_cells = cells /. float_of_int extent in
    (* forward elimination *)
    if coord > 0 then E.recv ctx ~src:upstream ~tag:tag_sweep_fwd ~dt:D.Double ~count:line_count;
    E.compute ctx (solve_stage dir_cells);
    if coord < extent - 1 then
      E.send ctx ~dest:downstream ~tag:tag_sweep_fwd ~dt:D.Double ~count:line_count;
    (* back substitution, reversed *)
    if coord < extent - 1 then
      E.recv ctx ~src:downstream ~tag:tag_sweep_bwd ~dt:D.Double ~count:line_count;
    E.compute ctx (backsub_stage dir_cells);
    if coord > 0 then E.send ctx ~dest:upstream ~tag:tag_sweep_bwd ~dt:D.Double ~count:line_count
  in
  (* initial parameter broadcast, as the NPB setup does *)
  E.bcast ctx world ~root:0 ~dt:D.Int ~count:8;
  E.bcast ctx world ~root:0 ~dt:D.Double ~count:4;
  (* BT-IO: one shared solution file for the whole run *)
  let io_file = if params.io_interval > 0 then Some (E.file_open ctx world) else None in
  let solution_doubles = nc * nc * params.grid_n * 5 in
  for step = 1 to params.timesteps do
    copy_faces ();
    E.compute ctx rhs_kernel;
    (* x sweep: pipeline along the grid row *)
    sweep ~coord:px ~extent:q ~upstream:((py * q) + px - 1) ~downstream:((py * q) + px + 1);
    (* y sweep: pipeline along the grid column *)
    sweep ~coord:py ~extent:q ~upstream:(((py - 1) * q) + px) ~downstream:(((py + 1) * q) + px);
    (* z sweep is rank-local in the 2-D decomposition *)
    E.compute ctx (solve_stage cells);
    E.compute ctx add_kernel;
    (match io_file with
    | Some f when step mod params.io_interval = 0 ->
        E.file_write_all ctx f ~dt:D.Double ~count:solution_doubles
    | Some _ | None -> ())
  done;
  (match io_file with
  | Some f ->
      (* read back for verification, then close (the BT-IO epilogue) *)
      E.file_read_all ctx f ~dt:D.Double ~count:solution_doubles;
      E.file_close ctx f
  | None -> ());
  (* verification: residual norms to rank 0 *)
  E.reduce ctx world ~root:0 ~dt:D.Double ~count:5 ~op:Siesta_mpi.Op.Sum
