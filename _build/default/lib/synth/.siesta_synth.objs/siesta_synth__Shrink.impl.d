lib/synth/shrink.ml: Array Float List Siesta_mpi Siesta_numerics Siesta_perf
