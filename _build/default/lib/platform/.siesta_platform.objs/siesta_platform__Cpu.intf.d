lib/platform/cpu.mli:
