type t = {
  name : string;
  inter_latency_s : float;
  inter_bandwidth_bps : float;
  intra_latency_s : float;
  intra_bandwidth_bps : float;
}

let transfer_time t ~same_node ~bytes =
  let n = float_of_int bytes in
  if same_node then t.intra_latency_s +. (n /. t.intra_bandwidth_bps)
  else t.inter_latency_s +. (n /. t.inter_bandwidth_bps)
