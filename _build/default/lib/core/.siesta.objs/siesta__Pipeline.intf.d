lib/core/pipeline.mli: Siesta_merge Siesta_mpi Siesta_platform Siesta_synth Siesta_trace Siesta_workloads
