lib/workloads/npb_sp.ml: Adi Common
