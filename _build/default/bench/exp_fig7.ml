(* Figure 7: robustness to MPI implementation changes.  Proxies are
   generated under openmpi on platform A, then executed under openmpi,
   mpich and mvapich; ground truth is the original program run under each
   implementation.  Siesta's lossless communication replay tracks the
   implementation-specific pricing; ScalaBench's histogram-quantized,
   overlap-less replay does not. *)

open Exp_common
module Scalabench = Siesta_baselines.Scalabench

let nranks_for (w : Registry.t) = List.hd w.Registry.procs

let run () =
  heading "Figure 7: execution time under openmpi / mpich / mvapich (generated under openmpi)";
  let impls = Mpi_impl.all in
  let rows = ref [] in
  let siesta_errs = ref [] and sb_errs = ref [] in
  List.iter
    (fun (w : Registry.t) ->
      let nranks = nranks_for w in
      let s = Pipeline.spec ~workload:w.Registry.name ~nranks () in
      let platform = s.Pipeline.platform in
      let traced = Pipeline.trace s in
      let art = Pipeline.synthesize traced in
      let recorder = traced.Pipeline.recorder in
      let streams = Array.init nranks (fun r -> Recorder.events recorder r) in
      let sb =
        match
          Scalabench.synthesize ~platform ~workload:w.Registry.name ~nranks ~streams
            ~compute_table:(Recorder.compute_table recorder)
        with
        | sb -> Some sb
        | exception Scalabench.Unsupported _ -> None
      in
      List.iter
        (fun impl ->
          let original = (Pipeline.run_original s ~platform ~impl).Engine.elapsed in
          let siesta = (Pipeline.run_proxy art ~platform ~impl).Engine.elapsed in
          let sb_time =
            Option.map
              (fun sb -> (Engine.run ~platform ~impl ~nranks (Scalabench.program sb)).Engine.elapsed)
              sb
          in
          siesta_errs := time_err ~estimated:siesta ~original :: !siesta_errs;
          Option.iter
            (fun t -> sb_errs := time_err ~estimated:t ~original :: !sb_errs)
            sb_time;
          rows :=
            [
              w.Registry.name;
              string_of_int nranks;
              impl.Mpi_impl.name;
              secs original;
              secs siesta;
              (match sb_time with Some t -> secs t | None -> "crash");
            ]
            :: !rows)
        impls;
      Printf.eprintf "  [fig7] %s done\n%!" w.Registry.name)
    Registry.paper_workloads;
  table
    ~header:[ "Program"; "P"; "MPI impl"; "Original(s)"; "Siesta(s)"; "ScalaBench(s)" ]
    ~rows:(List.rev !rows);
  Printf.printf "\nmean time error: Siesta %s | ScalaBench %s\n"
    (pct (Evaluate.mean !siesta_errs))
    (pct (Evaluate.mean !sb_errs))
