(** Interconnect alpha–beta model.

    A message of [n] bytes between two ranks costs
    [latency + n / bandwidth], with separate parameters for intra-node
    (shared-memory) and inter-node transfers.  The single-node platform C
    has no interconnect ("Network: None" in Table 2): every pair is
    intra-node. *)

type t = {
  name : string;
  inter_latency_s : float;  (** one-way inter-node latency, seconds *)
  inter_bandwidth_bps : float;  (** inter-node bandwidth, bytes/second *)
  intra_latency_s : float;  (** shared-memory latency, seconds *)
  intra_bandwidth_bps : float;  (** shared-memory bandwidth, bytes/second *)
}

val transfer_time : t -> same_node:bool -> bytes:int -> float
(** Point-to-point wire time for one message. *)
