lib/merge/rank_list.ml: Array Format List String
