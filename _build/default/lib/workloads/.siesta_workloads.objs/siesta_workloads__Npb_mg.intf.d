lib/workloads/npb_mg.mli: Siesta_mpi
