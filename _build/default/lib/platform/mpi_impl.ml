type t = {
  name : string;
  call_overhead_s : float;
  eager_threshold_bytes : int;
  rendezvous_extra_s : float;
  latency_factor : float;
  bandwidth_factor : float;
  bcast_factor : float;
  reduce_factor : float;
  allreduce_factor : float;
  alltoall_factor : float;
  allgather_factor : float;
  barrier_factor : float;
}

(* The absolute values below are plausible for the 2019-era stacks the
   paper used; what matters for the experiments is that the three profiles
   price identical call sequences differently, in realistic proportions. *)

let openmpi =
  {
    name = "openmpi";
    call_overhead_s = 0.4e-6;
    eager_threshold_bytes = 4096;
    rendezvous_extra_s = 1.8e-6;
    latency_factor = 1.0;
    bandwidth_factor = 0.90;
    bcast_factor = 1.0;
    reduce_factor = 1.05;
    allreduce_factor = 1.0;
    alltoall_factor = 1.0;
    allgather_factor = 1.0;
    barrier_factor = 1.0;
  }

let mpich =
  {
    name = "mpich";
    call_overhead_s = 0.3e-6;
    eager_threshold_bytes = 8192;
    rendezvous_extra_s = 2.2e-6;
    latency_factor = 1.12;
    bandwidth_factor = 0.86;
    bcast_factor = 0.92;
    reduce_factor = 0.95;
    allreduce_factor = 1.10;
    alltoall_factor = 1.15;
    allgather_factor = 1.05;
    barrier_factor = 0.9;
  }

let mvapich =
  {
    name = "mvapich";
    call_overhead_s = 0.25e-6;
    eager_threshold_bytes = 16384;
    rendezvous_extra_s = 1.5e-6;
    latency_factor = 0.85;
    bandwidth_factor = 0.93;
    bcast_factor = 0.95;
    reduce_factor = 1.0;
    allreduce_factor = 0.9;
    alltoall_factor = 0.95;
    allgather_factor = 0.97;
    barrier_factor = 1.1;
  }

let all = [ openmpi; mpich; mvapich ]
let by_name name = List.find (fun t -> t.name = name) all
