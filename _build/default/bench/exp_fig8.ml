(* Figure 8: portability between platforms A and C.  MG, IS and SP at 16
   processes (the C server has 28 cores): proxies generated on one
   platform, executed on the other, against the original program re-run
   there.  Siesta's synthesized computation re-prices under the new CPU
   model; ScalaBench's recorded sleeps do not. *)

open Exp_common
module Scalabench = Siesta_baselines.Scalabench

let programs = [ "MG"; "IS"; "SP" ]
let nranks = 16

let direction ~from_p ~to_p label rows siesta_errs sb_errs =
  List.iter
    (fun name ->
      let s = Pipeline.spec ~platform:from_p ~workload:name ~nranks () in
      let impl = s.Pipeline.impl in
      let traced = Pipeline.trace s in
      let art = Pipeline.synthesize traced in
      let recorder = traced.Pipeline.recorder in
      let streams = Array.init nranks (fun r -> Recorder.events recorder r) in
      let sb =
        match
          Scalabench.synthesize ~platform:from_p ~workload:name ~nranks ~streams
            ~compute_table:(Recorder.compute_table recorder)
        with
        | sb -> Some sb
        | exception Scalabench.Unsupported _ -> None
      in
      let original = (Pipeline.run_original s ~platform:to_p ~impl).Engine.elapsed in
      let siesta = (Pipeline.run_proxy art ~platform:to_p ~impl).Engine.elapsed in
      let sb_time =
        Option.map
          (fun sb ->
            (Engine.run ~platform:to_p ~impl ~nranks (Scalabench.program sb)).Engine.elapsed)
          sb
      in
      siesta_errs := time_err ~estimated:siesta ~original :: !siesta_errs;
      Option.iter (fun t -> sb_errs := time_err ~estimated:t ~original :: !sb_errs) sb_time;
      rows :=
        [
          name;
          label;
          secs original;
          secs siesta;
          (match sb_time with Some t -> secs t | None -> "crash");
        ]
        :: !rows)
    programs

let run () =
  heading "Figure 8: portability between platforms A and C (16 processes)";
  let rows = ref [] and se = ref [] and be = ref [] in
  direction ~from_p:Spec.platform_a ~to_p:Spec.platform_c "A to C" rows se be;
  direction ~from_p:Spec.platform_c ~to_p:Spec.platform_a "C to A" rows se be;
  table
    ~header:[ "Program"; "Direction"; "Original(s)"; "Siesta(s)"; "ScalaBench(s)" ]
    ~rows:(List.rev !rows);
  Printf.printf "\nmean time error: Siesta %s | ScalaBench %s\n"
    (pct (Evaluate.mean !se))
    (pct (Evaluate.mean !be))
