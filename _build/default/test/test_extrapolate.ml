(* Tests for the scale-extrapolation extension. *)

module Scale_model = Siesta_extrapolate.Scale_model
module Trace_io = Siesta_trace.Trace_io
module Event = Siesta_trace.Event
module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module K = Siesta_perf.Kernel
module Counters = Siesta_perf.Counters

let platform = Siesta_platform.Spec.platform_a
let impl = Siesta_platform.Mpi_impl.openmpi

let trace_of_workload workload nranks =
  let s = Siesta.Pipeline.spec ~workload ~nranks () in
  let traced = Siesta.Pipeline.trace s in
  Trace_io.of_recorder traced.Siesta.Pipeline.recorder

(* a hand-rolled scale-regular ring program: volumes shrink as 1/P *)
let ring_program ~nranks ctx =
  let r = E.rank ctx and n = E.size ctx in
  let count = 1_048_576 / nranks in
  for _ = 1 to 3 do
    E.compute ctx (K.streaming ~label:"k" ~flops:(4e8 /. float_of_int nranks)
                     ~bytes:(3.2e9 /. float_of_int nranks));
    let rq = E.irecv ctx ~src:((r + n - 1) mod n) ~tag:1 ~dt:D.Double ~count in
    E.send ctx ~dest:((r + 1) mod n) ~tag:1 ~dt:D.Double ~count;
    E.wait ctx rq;
    E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:4 ~op:Siesta_mpi.Op.Sum
  done

let trace_of_ring nranks =
  let recorder = Siesta_trace.Recorder.create ~nranks () in
  ignore
    (E.run ~platform ~impl ~nranks ~hook:(Siesta_trace.Recorder.hook recorder)
       (ring_program ~nranks));
  Trace_io.of_recorder recorder

let comm_only stream =
  Array.of_list (List.filter (fun e -> not (Event.is_compute e)) (Array.to_list stream))

let test_requires_three_scales () =
  Alcotest.check_raises "two scales rejected"
    (Invalid_argument "Scale_model.fit: need at least three scales") (fun () ->
      ignore (Scale_model.fit [ trace_of_ring 4; trace_of_ring 8 ]))

let test_ring_extrapolates () =
  let model = Scale_model.fit [ trace_of_ring 4; trace_of_ring 8; trace_of_ring 16 ] in
  let predicted = Scale_model.instantiate model ~nranks:32 in
  let actual = trace_of_ring 32 in
  for r = 0 to 31 do
    if comm_only predicted.Trace_io.streams.(r) <> comm_only actual.Trace_io.streams.(r) then
      Alcotest.failf "rank %d communication mismatch" r
  done

let test_ring_compute_extrapolates () =
  let model = Scale_model.fit [ trace_of_ring 4; trace_of_ring 8; trace_of_ring 16 ] in
  let predicted = Scale_model.instantiate model ~nranks:32 in
  let actual = trace_of_ring 32 in
  (* one compute cluster each; its INS must scale as 1/P within noise *)
  let ins t = (fst t.Trace_io.centroids.(0)).Counters.ins in
  let rel = abs_float (ins predicted -. ins actual) /. ins actual in
  Alcotest.(check bool) (Printf.sprintf "centroid INS within 5%% (%.2f%%)" (100.0 *. rel)) true
    (rel < 0.05)

let test_bt_exact_at_unseen_scale () =
  let model =
    Scale_model.fit [ trace_of_workload "BT" 16; trace_of_workload "BT" 36; trace_of_workload "BT" 64 ]
  in
  Alcotest.(check int) "nine boundary classes" 9 (Scale_model.classes model);
  let predicted = Scale_model.instantiate model ~nranks:144 in
  let actual = trace_of_workload "BT" 144 in
  for r = 0 to 143 do
    if comm_only predicted.Trace_io.streams.(r) <> comm_only actual.Trace_io.streams.(r) then
      Alcotest.failf "rank %d communication mismatch at the unseen scale" r
  done

let test_bt_proxy_time_at_unseen_scale () =
  let model =
    Scale_model.fit [ trace_of_workload "BT" 16; trace_of_workload "BT" 36; trace_of_workload "BT" 64 ]
  in
  let predicted = Scale_model.instantiate model ~nranks:144 in
  let merged = Siesta_merge.Pipeline.merge_streams ~nranks:144 predicted.Trace_io.streams in
  let proxy =
    Siesta_synth.Proxy_ir.synthesize ~platform ~impl ~merged
      ~compute_table:(Trace_io.compute_table predicted) ()
  in
  let replayed = (E.run ~platform ~impl ~nranks:144 (Siesta_synth.Proxy_ir.program proxy)).E.elapsed in
  let s = Siesta.Pipeline.spec ~workload:"BT" ~nranks:144 () in
  let original = (Siesta.Pipeline.run_original s ~platform ~impl).E.elapsed in
  let err = abs_float (replayed -. original) /. original in
  Alcotest.(check bool) (Printf.sprintf "time error %.2f%% < 5%%" (100.0 *. err)) true (err < 0.05)

let test_square_target_validation () =
  let model =
    Scale_model.fit [ trace_of_workload "BT" 16; trace_of_workload "BT" 36; trace_of_workload "BT" 64 ]
  in
  Alcotest.(check bool) "non-square target rejected" true
    (match Scale_model.instantiate model ~nranks:60 with
    | exception Scale_model.Unsupported _ -> true
    | _ -> false)

let test_irregular_program_rejected () =
  (* CG's stream shape changes with scale; somewhere the model must say no *)
  Alcotest.(check bool) "CG rejected" true
    (match
       Scale_model.fit
         [ trace_of_workload "CG" 16; trace_of_workload "CG" 64; trace_of_workload "CG" 256 ]
     with
    | exception Scale_model.Unsupported _ -> true
    | _ -> false)

let test_alltoallv_rejected () =
  (* IS carries per-peer vectors *)
  Alcotest.(check bool) "IS rejected" true
    (match
       Scale_model.fit
         [ trace_of_workload "IS" 16; trace_of_workload "IS" 64; trace_of_workload "IS" 128 ]
     with
    | exception Scale_model.Unsupported _ -> true
    | _ -> false)

let suite =
  [
    ("needs three scales", `Quick, test_requires_three_scales);
    ("ring: exact extrapolation", `Quick, test_ring_extrapolates);
    ("ring: computation extrapolates", `Quick, test_ring_compute_extrapolates);
    ("BT: exact communication at unseen 144 ranks", `Slow, test_bt_exact_at_unseen_scale);
    ("BT: proxy time at unseen scale", `Slow, test_bt_proxy_time_at_unseen_scale);
    ("square-grid target validation", `Slow, test_square_target_validation);
    ("irregular programs rejected (CG)", `Slow, test_irregular_program_rejected);
    ("per-peer vectors rejected (IS)", `Quick, test_alltoallv_rejected);
  ]
