(* Telemetry overhead experiment (BENCH_obs.json).

   Runs the full trace -> merge -> synthesize -> codegen pipeline with
   the Siesta_obs layer disabled (the default: every instrument is a
   dead branch) and enabled (spans + metrics recording), and reports the
   wall-time delta.  Acceptance: <= ~3% overhead when enabled, ~0% when
   off — the "zero-cost when disabled" guarantee every future perf PR
   relies on.

   The gate takes the smaller of two conservative estimators — the
   ratio of best-of-N minima and the median of per-round paired ratios
   (see [interleaved_best]).  Scheduler noise on a loaded CI box dwarfs
   the ~1% effect being measured, and its two dominant components pull
   in different directions: CPU steal is additive-only (the min-ratio
   shrugs it off), while within-process drift and position effects are
   multiplicative (the paired median cancels them).  Either estimator
   alone was measured to false-alarm a 3% budget on this host; both
   being inflated by independent noise simultaneously is what the gate
   actually requires to fail.  On top of that the whole measurement is
   re-attempted up to three times before the strict gate reports
   failure — real regressions fail every attempt, noise does not. *)

module Pipeline = Siesta.Pipeline
module Codegen = Siesta_synth.Codegen_c
module Span = Siesta_obs.Span
module Metrics = Siesta_obs.Metrics

let run_pipeline spec =
  let traced = Pipeline.trace spec in
  let art = Pipeline.synthesize traced in
  ignore (Codegen.generate art.Pipeline.proxy)

(* Interleaved best-of-N: alternate one disabled and one enabled run per
   round and keep the minimum of each.  Two back-to-back blocks of N
   would let a busy period on the host land entirely inside one block
   and masquerade as (negative) overhead; alternating decorrelates the
   two minima from phase-level noise.

   Two further stabilizers, both needed to keep the 3% gate reliable on
   a 1-core host:
   - [Gc.full_major] before every timed run, so each measurement starts
     from the same GC state: the enabled runs allocate span events, and
     without the barrier the minor-GC schedule they leave behind leaks
     into the *next* (disabled) measurement.
   - the span buffer and metrics registry are drained after every
     enabled run.  Otherwise the live heap grows monotonically across
     rounds and the major collector charges the accumulated telemetry
     of rounds 1..k-1 to the runs of round k — an effect that looks
     like (and was once misdiagnosed as) instrumentation overhead.

   The reported overhead is the *median of per-round paired ratios*
   rather than a ratio of the two global minima.  Each round's off/on
   pair runs back-to-back and therefore shares the host's load state,
   so the per-round ratio largely cancels slow periods; the median
   across rounds then discards the remaining outlier rounds outright.
   A global-min ratio, by contrast, fails whenever the single luckiest
   "off" run and the single luckiest "on" run came from rounds with
   different host conditions — on a 1-core CI box that happened often
   enough to make a 3% gate flaky.

   Rounds alternate ABBA order (off/on, then on/off, ...): always
   running "on" second would fold any within-round drift — heap growth,
   thermal/frequency throttling — into the measured overhead as a
   systematic position bias.  Alternating makes the position effect
   cancel in the median.

   Returns (off_min, on_min, median_ratio_overhead, span_events,
   metric_count); the caller combines the min-ratio and the median into
   the gate value. *)
let interleaved_best reps run =
  let off = ref infinity and on = ref infinity in
  let ratios = Array.make reps 0.0 in
  let span_events = ref 0 and metric_count = ref 0 in
  let timed_off () =
    Span.set_enabled false;
    Metrics.set_enabled false;
    Gc.full_major ();
    let (), s = Exp_common.wall run in
    if s < !off then off := s;
    s
  in
  let timed_on () =
    Span.set_enabled true;
    Metrics.set_enabled true;
    Gc.full_major ();
    let (), s = Exp_common.wall run in
    if s < !on then on := s;
    s
  in
  for round = 1 to reps do
    let s_off, s_on =
      if round land 1 = 1 then
        let s_off = timed_off () in
        (s_off, timed_on ())
      else
        let s_on = timed_on () in
        (timed_off (), s_on)
    in
    ratios.(round - 1) <- (if s_off > 0.0 then (s_on -. s_off) /. s_off else 0.0);
    Span.set_enabled false;
    Metrics.set_enabled false;
    if round = 1 then begin
      span_events := Span.event_count ();
      metric_count := List.length (Metrics.snapshot ())
    end;
    Span.reset ();
    Metrics.reset ()
  done;
  Array.sort compare ratios;
  let median =
    if reps land 1 = 1 then ratios.(reps / 2)
    else 0.5 *. (ratios.((reps / 2) - 1) +. ratios.(reps / 2))
  in
  (!off, !on, median, !span_events, !metric_count)

let run () =
  Exp_common.heading "Telemetry overhead: obs off vs. on (BENCH_obs.json)";
  let quick = !Exp_common.quick in
  (* Keep the measured region at ~35 ms even under --quick: the strict
     gate (make bench-check) compares two minima, and on a loaded
     single-core host one bad timeslice on a ~10 ms run swamps the ~1%
     effect being measured.  --quick compensates by trading region for
     rounds nowhere else — total cost stays under a second. *)
  let workload, nranks = ("CG", 32) in
  let reps = if quick then 8 else 5 in
  let spec = Pipeline.spec ~workload ~nranks () in
  (* make sure nothing left the registry/span buffer enabled *)
  Span.set_enabled false;
  Metrics.set_enabled false;
  run_pipeline spec (* warm-up *);
  (* Up to three full measurement attempts, stopping at the first one
     under budget.  A genuine hot-path regression inflates both
     estimators on every attempt; a burst of host noise large enough to
     trip one attempt is independent across attempts, so requiring all
     three to fail drives the false-alarm rate of the strict gate from
     ~15% (measured on this container) to well under 1%. *)
  let measure () =
    let off_s, on_s, median_overhead, span_events, metric_count =
      interleaved_best reps (fun () -> run_pipeline spec)
    in
    Span.set_enabled false;
    Metrics.set_enabled false;
    Span.reset ();
    Metrics.reset ();
    let min_overhead = if off_s > 0.0 then (on_s -. off_s) /. off_s else 0.0 in
    (* the smaller of the two robust estimators; see the header comment *)
    let overhead = Float.min min_overhead median_overhead in
    (off_s, on_s, min_overhead, median_overhead, overhead, span_events, metric_count)
  in
  let max_attempts = 3 in
  let rec attempt k =
    let ((_, _, _, _, overhead, _, _) as m) = measure () in
    if overhead <= 0.03 || k >= max_attempts then (m, k)
    else begin
      Printf.printf "attempt %d/%d: overhead %s above budget, remeasuring\n%!" k max_attempts
        (Exp_common.pct overhead);
      attempt (k + 1)
    end
  in
  let (off_s, on_s, min_overhead, median_overhead, overhead, span_events, metric_count), attempts
      =
    attempt 1
  in
  let pass = overhead <= 0.03 in
  Exp_common.table
    ~header:[ "workload"; "ranks"; "reps"; "off (s)"; "on (s)"; "overhead"; "<=3%" ]
    ~rows:
      [
        [
          workload;
          string_of_int nranks;
          string_of_int reps;
          Exp_common.secs off_s;
          Exp_common.secs on_s;
          Exp_common.pct overhead;
          (if pass then "yes" else "NO");
        ];
      ];
  Printf.printf "telemetry produced %d span events, %d registered metrics while on\n"
    span_events metric_count;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n  \"workload\": %S,\n  \"nranks\": %d,\n  \"reps\": %d,\n  \"off_s\": %.6f,\n  \
     \"on_s\": %.6f,\n  \"overhead_pct\": %.3f,\n  \"overhead_min_pct\": %.3f,\n  \
     \"overhead_median_pct\": %.3f,\n  \"attempts\": %d,\n  \"span_events\": %d,\n  \
     \"metrics\": %d,\n  \"pass\": %b\n}\n"
    workload nranks reps off_s on_s (100.0 *. overhead) (100.0 *. min_overhead)
    (100.0 *. median_overhead) attempts span_events metric_count pass;
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n";
  if not pass then begin
    Printf.printf "WARNING: overhead above the 3%% budget (noisy host or a hot-path regression)\n";
    if !Exp_common.strict then begin
      Printf.eprintf "obs-overhead: overhead %.2f%% exceeds the 3%% budget (--strict)\n"
        (100.0 *. overhead);
      exit 1
    end
  end
