(* NPB BT (block tridiagonal) skeleton, class D shape: square process
   grids (64, 121, 256, 529), face exchanges plus pipelined 5x5-block line
   solves in x and y. *)

let default_timesteps = 12

let program ?(timesteps = default_timesteps) ~nranks () =
  Adi.program (Adi.bt_params ~timesteps) ~nranks

let valid_procs p = match Common.square_side p with _ -> true | exception _ -> false
