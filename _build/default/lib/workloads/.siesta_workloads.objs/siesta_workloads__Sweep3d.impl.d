lib/workloads/sweep3d.ml: Common List Siesta_mpi Siesta_perf
