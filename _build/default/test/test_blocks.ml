(* Tests for siesta_blocks: the 11 code blocks and their micro-benchmark. *)

module Block = Siesta_blocks.Block
module Microbench = Siesta_blocks.Microbench
module Counters = Siesta_perf.Counters
module Cpu = Siesta_platform.Cpu
module Spec = Siesta_platform.Spec
module Matrix = Siesta_numerics.Matrix

let test_block_table_shape () =
  Alcotest.(check int) "11 blocks" 11 Block.count;
  Array.iteri
    (fun j b ->
      Alcotest.(check int) "ids sequential" (j + 1) b.Block.id;
      Alcotest.(check bool) "has C source" true (String.length b.Block.c_source > 0);
      Alcotest.(check bool) "does something" true (b.Block.work.Cpu.ins > 0.0))
    Block.all

let test_block_character () =
  let b j = Block.all.(j).Block.work in
  (* block 2 is the low-LST/INS add; block 1 the plain add *)
  let lst w = w.Cpu.loads +. w.Cpu.stores in
  Alcotest.(check bool) "block2 lower LST/INS than block1" true
    (lst (b 1) /. (b 1).Cpu.ins < lst (b 0) /. (b 0).Cpu.ins);
  (* divides only in blocks 3,4,6,9 *)
  List.iteri
    (fun j w ->
      let expect_div = List.mem (j + 1) [ 3; 4; 6; 9 ] in
      Alcotest.(check bool)
        (Printf.sprintf "block %d div" (j + 1))
        expect_div
        ((w : Cpu.work).Cpu.div_ops > 0.0))
    (Array.to_list (Array.map (fun b -> b.Block.work) Block.all));
  (* cache-miss blocks are 7-9 *)
  List.iteri
    (fun j w ->
      let expect_miss = List.mem (j + 1) [ 7; 8; 9 ] in
      Alcotest.(check bool)
        (Printf.sprintf "block %d misses" (j + 1))
        expect_miss
        ((w : Cpu.work).Cpu.l1_misses > 100.0))
    (Array.to_list (Array.map (fun b -> b.Block.work) Block.all));
  (* mispredict-heavy blocks are 5 and 6 *)
  Alcotest.(check bool) "block5 msp" true ((b 4).Cpu.mispredicts >= 10.0);
  Alcotest.(check bool) "block6 msp" true ((b 5).Cpu.mispredicts >= 10.0)

let test_combination_work_sums () =
  let x = Array.make 11 0.0 in
  x.(0) <- 3.0;
  x.(10) <- 5.0;
  let w = Block.work_of_combination x in
  let expect =
    (3.0 *. Block.all.(0).Block.work.Cpu.ins) +. (5.0 *. Block.all.(10).Block.work.Cpu.ins)
  in
  Alcotest.(check (float 1e-9)) "ins sums" expect w.Cpu.ins

let test_combination_rejects_wrong_length () =
  Alcotest.(check bool) "short vector raises" true
    (match Block.work_of_combination [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_works_additive_equals_summed_counters () =
  (* per-block pricing sums to the matrix prediction B x *)
  let platform = Spec.platform_a in
  let x = [| 5.0; 10.0; 2.0; 3.0; 1.0; 1.0; 2.0; 1.0; 1.0; 7.0; 40.0 |] in
  let summed =
    List.fold_left
      (fun acc w -> Counters.add acc (Counters.of_work platform.Spec.cpu w))
      Counters.zero
      (Block.works_of_combination x)
  in
  let b = Microbench.matrix platform in
  let bx = Matrix.mul_vec b x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-6)) "B x matches" v (Counters.to_array summed).(i))
    bx

let test_validate_combination () =
  let ok = Array.make 11 1.0 in
  ok.(10) <- 9.0;
  Alcotest.(check bool) "valid" true (Block.validate_combination ok = Ok ());
  let neg = Array.make 11 1.0 in
  neg.(3) <- -1.0;
  Alcotest.(check bool) "negative rejected" true (Result.is_error (Block.validate_combination neg));
  let uncovered = Array.make 11 1.0 in
  uncovered.(10) <- 2.0;
  Alcotest.(check bool) "loop constraint enforced" true
    (Result.is_error (Block.validate_combination uncovered));
  Alcotest.(check bool) "wrong length" true
    (Result.is_error (Block.validate_combination [| 1.0 |]))

let test_microbench_platform_sensitivity () =
  (* the same block costs more cycles on the Phi *)
  let div_block = Block.all.(3) in
  let a = (Microbench.measure Spec.platform_a div_block).Counters.cyc in
  let b = (Microbench.measure Spec.platform_b div_block).Counters.cyc in
  Alcotest.(check bool) "phi pays more for divides" true (b > a);
  (* but retires the same instructions *)
  let ia = (Microbench.measure Spec.platform_a div_block).Counters.ins in
  let ib = (Microbench.measure Spec.platform_b div_block).Counters.ins in
  Alcotest.(check (float 1e-9)) "same ins" ia ib

let test_matrix_shape_and_rank () =
  let b = Microbench.matrix Spec.platform_a in
  Alcotest.(check int) "6 rows" 6 (Matrix.rows b);
  Alcotest.(check int) "11 cols" 11 (Matrix.cols b);
  (* no two columns identical: blocks are distinguishable *)
  for j = 0 to 10 do
    for k = j + 1 to 10 do
      if Matrix.col b j = Matrix.col b k then Alcotest.failf "columns %d and %d identical" j k
    done
  done

let suite =
  [
    ("block table shape", `Quick, test_block_table_shape);
    ("blocks have their designed character", `Quick, test_block_character);
    ("combination work sums", `Quick, test_combination_work_sums);
    ("combination length check", `Quick, test_combination_rejects_wrong_length);
    ("per-block pricing equals B x", `Quick, test_works_additive_equals_summed_counters);
    ("combination validation", `Quick, test_validate_combination);
    ("micro-benchmark is platform sensitive", `Quick, test_microbench_platform_sensitivity);
    ("B matrix shape, distinct columns", `Quick, test_matrix_shape_and_rank);
  ]
