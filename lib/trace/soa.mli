(** Struct-of-arrays event storage for the streaming trace path.

    Splits a trace into a small table of distinct event definitions and,
    per rank, a flat [Bigarray]-backed buffer of dense int codes
    referencing that table.  The code buffers live outside the OCaml
    heap, so peak GC-managed memory scales with the number of {e
    distinct} events (grammar-sized), not with trace length — the
    success metric of the streaming pipeline. *)

type buf
(** A growable buffer of int event codes (8 bytes per event, ×2 growth,
    malloc-backed — invisible to [Gc.quick_stat] heap statistics). *)

val create : ?capacity:int -> unit -> buf
val length : buf -> int

val append : buf -> int -> unit
(** Amortized O(1); no OCaml-heap allocation except on growth. *)

val get : buf -> int -> int
(** @raise Invalid_argument on out-of-bounds index. *)

val unsafe_get : buf -> int -> int
(** No bounds check: for the merge layer's sequential scans, where the
    loop bound is [length]. *)

val iter : (int -> unit) -> buf -> unit
val to_array : buf -> int array
val of_array : int array -> buf

val mem_bytes : buf -> int
(** Bytes of off-heap storage currently reserved (capacity, not length). *)

(** Record-time interner: [Event.t] -> dense code, first-appearance
    order.  One interner is shared across all ranks of a recording so
    codes are process-global; the merge layer canonicalizes them to the
    rank-major numbering afterwards. *)
module Intern : sig
  type t

  val create : unit -> t

  val intern : t -> Event.t -> int
  (** Code of [ev], assigning the next dense code on first sight. *)

  val size : t -> int
  (** Number of distinct events interned so far. *)

  val defs : t -> Event.t array
  (** Definitions in code order: [(defs t).(intern t ev) = ev]. *)
end
