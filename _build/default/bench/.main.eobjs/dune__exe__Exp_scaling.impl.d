bench/exp_scaling.ml: Array Exp_common List Pipeline Printf Recorder Siesta_merge Siesta_util
