(* NPB BT-IO: the BT pseudo-application with its "full MPI-IO" checkpoint
   mode — a collective write of the solution array to one shared file
   every 5 timesteps and a collective read-back verification at the end.
   This exercises the framework's I/O extension (the paper's Section 2.1
   leaves I/O tracing to future work). *)

let default_timesteps = Npb_bt.default_timesteps

let program ?(timesteps = default_timesteps) ~nranks () =
  Adi.program (Adi.btio_params ~timesteps) ~nranks

let valid_procs = Npb_bt.valid_procs
