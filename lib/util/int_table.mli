(** Open-addressing hash table specialized to unboxed [int] keys.

    The generic [Hashtbl] pays for polymorphic hashing and (for tuple keys)
    a key allocation per operation.  The Sequitur digram index and the
    merge pipeline's interning tables only ever key on immediates, so this
    table stores keys in a flat [int array] with linear probing — no
    allocation on lookup, insert or delete, and a single multiplicative
    mix as the hash.

    Deletions are supported via tombstones (the digram index deletes
    constantly); the table rehashes away tombstones when it grows.

    Not thread-safe; every domain builds its own tables. *)

type 'a t

val create : ?initial_capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty table.  [dummy] fills empty value
    slots (it is never returned by lookups); any value of the right type
    works. *)

val length : 'a t -> int
(** Number of live bindings. *)

val find_opt : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

val replace : 'a t -> int -> 'a -> unit
(** Insert or overwrite the binding for a key. *)

val remove : 'a t -> int -> unit
(** Remove the binding if present; no-op otherwise. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate over live bindings in unspecified order. *)

val clear : 'a t -> unit
(** Drop all bindings, keeping the current capacity. *)
