(* Shared plumbing for the experiment drivers. *)

module Pipeline = Siesta.Pipeline
module Evaluate = Siesta.Evaluate
module Engine = Siesta_mpi.Engine
module Spec = Siesta_platform.Spec
module Mpi_impl = Siesta_platform.Mpi_impl
module Registry = Siesta_workloads.Registry
module Recorder = Siesta_trace.Recorder

let quick = ref false

let strict = ref false
(** Under [--strict] the regression-guard experiments (obs-overhead,
    pipeline-scale) exit non-zero on a failed acceptance check instead of
    printing a warning — this is what [make bench-check] runs. *)

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let secs x = Printf.sprintf "%.4f" x

let wall = Siesta_obs.Clock.wall
(** Wall-clock timing on the telemetry layer's monotonic clock — the same
    source the spans use, so bench numbers and --trace-out output are
    directly comparable.  [Sys.time] would sum CPU time across domains
    and hide parallel speedups. *)

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title bar

let table ~header ~rows = Siesta_util.Pretty_table.print ~header ~rows

(* Per-paper process counts, reduced under --quick. *)
let procs_of (w : Registry.t) = if !quick then [ List.hd w.Registry.procs ] else w.Registry.procs

let time_err ~estimated ~original = Evaluate.time_error ~estimated ~original
