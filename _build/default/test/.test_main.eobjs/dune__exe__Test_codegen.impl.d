test/test_codegen.ml: Alcotest Array Fun List Siesta_grammar Siesta_merge Siesta_mpi Siesta_synth Siesta_trace String
