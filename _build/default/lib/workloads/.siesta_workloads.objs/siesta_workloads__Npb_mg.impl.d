lib/workloads/npb_mg.ml: Common Siesta_mpi Siesta_perf
