# Convenience targets; everything real lives in dune.

SMOKE_TRACE := /tmp/siesta_smoke_trace.json
SMOKE_PROXY := /tmp/siesta_smoke_proxy.c

.PHONY: all build test check smoke bench-quick clean

all: build

build:
	dune build

test:
	dune runtest

# build + full test suite + a CLI smoke run that exercises the
# --trace-out path end-to-end and validates the emitted Chrome trace.
check: build test smoke

smoke: build
	dune exec bin/siesta_cli.exe -- synth CG -n 8 \
		--trace-out $(SMOKE_TRACE) -o $(SMOKE_PROXY)
	dune exec bin/siesta_cli.exe -- check-trace $(SMOKE_TRACE) \
		--min-stage-spans 5
	@rm -f $(SMOKE_TRACE) $(SMOKE_PROXY)

bench-quick:
	dune exec bench/main.exe -- --quick all

clean:
	dune clean
