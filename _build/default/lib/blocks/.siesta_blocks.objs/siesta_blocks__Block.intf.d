lib/blocks/block.mli: Siesta_platform
