lib/util/pretty_table.ml: Buffer List String
