(* Struct-of-arrays event storage for the streaming trace path.

   A trace is two things: a small table of distinct event definitions
   (SPMD programs repeat a handful of relative-rank-encoded events
   millions of times) and, per rank, a long sequence of references into
   that table.  The boxed representation ([Event.t list] per rank) costs
   tens of heap words per event and keeps the GC walking the whole trace
   on every major cycle.  Here the sequence side lives in a flat
   [Bigarray] of dense int codes instead: appends are O(1) amortized
   stores into malloc'd memory, the OCaml heap holds only the intern
   table and the definitions, and major GC cost is proportional to the
   number of *distinct* events, not the trace length.

   [Buf] is the growable code buffer (one per rank); [Intern] maps
   events to dense codes at record time.  Codes are assigned in first-
   appearance order of whatever interleaving the recording produced;
   the merge layer canonicalizes them (see
   {!Siesta_merge.Pipeline.merge_packed}), so two recordings of the same
   program always converge to the same merged grammar. *)

module A1 = Bigarray.Array1

type buf = {
  mutable data : (int, Bigarray.int_elt, Bigarray.c_layout) A1.t;
  mutable len : int;
}

let create ?(capacity = 1024) () =
  let capacity = max 16 capacity in
  { data = A1.create Bigarray.int Bigarray.c_layout capacity; len = 0 }

let length b = b.len

let append b code =
  let cap = A1.dim b.data in
  if b.len = cap then begin
    let bigger = A1.create Bigarray.int Bigarray.c_layout (2 * cap) in
    A1.blit b.data (A1.sub bigger 0 cap);
    b.data <- bigger
  end;
  A1.unsafe_set b.data b.len code;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Soa.get: index out of bounds";
  A1.unsafe_get b.data i

let unsafe_get b i = A1.unsafe_get b.data i

let iter f b =
  for i = 0 to b.len - 1 do
    f (A1.unsafe_get b.data i)
  done

let to_array b = Array.init b.len (fun i -> A1.unsafe_get b.data i)

let of_array a =
  let b = create ~capacity:(max 16 (Array.length a)) () in
  Array.iter (append b) a;
  b

let mem_bytes b = 8 * A1.dim b.data

(* ------------------------------------------------------------------ *)
(* Record-time event interning *)

module Intern = struct
  type t = {
    codes : (Event.t, int) Hashtbl.t;
    mutable defs_rev : Event.t list;
    mutable count : int;
  }

  let create () = { codes = Hashtbl.create 256; defs_rev = []; count = 0 }

  (* Structural hashing/equality on [Event.t] is exact: events are pure
     int/enum records (no floats, no cycles), so [Hashtbl.hash] may
     truncate deep [Alltoallv] count arrays but equality never lies.
     This replaces the batch path's per-event [Event.to_key] string
     build — the single hottest allocation of the old merge front end. *)
  let intern t ev =
    match Hashtbl.find_opt t.codes ev with
    | Some code -> code
    | None ->
        let code = t.count in
        t.count <- code + 1;
        Hashtbl.replace t.codes ev code;
        t.defs_rev <- ev :: t.defs_rev;
        code

  let size t = t.count
  let defs t = Array.of_list (List.rev t.defs_rev)
end
