module Merged = Siesta_merge.Merged
module Compute_table = Siesta_trace.Compute_table
module Event = Siesta_trace.Event
module Engine = Siesta_mpi.Engine
module Call = Siesta_mpi.Call
module Block = Siesta_blocks.Block
module Counters = Siesta_perf.Counters

type t = {
  merged : Merged.t;
  combos : float array array;
  combo_errors : float array;
  shrink : Shrink.t;
  generated_on : string;
}

let synthesize ~platform ~impl ?(factor = 1.0) ~merged ~compute_table () =
  let shrink =
    if factor = 1.0 then Shrink.identity else Shrink.fit ~platform ~impl ~factor
  in
  let n = Compute_table.cluster_count compute_table in
  let combos = Array.make n [||] in
  let errors = Array.make n 0.0 in
  for cid = 0 to n - 1 do
    let target = Shrink.shrink_counters shrink (Compute_table.centroid compute_table cid) in
    let sol = Proxy_search.search ~platform target in
    combos.(cid) <- sol.Proxy_search.x;
    errors.(cid) <- sol.Proxy_search.error
  done;
  {
    merged;
    combos;
    combo_errors = errors;
    shrink;
    generated_on = platform.Siesta_platform.Spec.name;
  }

let size_c_bytes t =
  Merged.serialized_bytes t.merged + (Array.length t.combos * ((Block.count * 4) + 4))

let mean_combo_error t =
  if Array.length t.combo_errors = 0 then 0.0
  else Siesta_util.Stats.mean t.combo_errors

let max_request_slots t =
  let m = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Isend (_, r)
      | Event.Irecv (_, r)
      | Event.Wait r
      | Event.Ibarrier { req = r; _ }
      | Event.Ibcast { req = r; _ }
      | Event.Iallreduce { req = r; _ } ->
          m := max !m (r + 1)
      | Event.Waitall rs -> List.iter (fun r -> m := max !m (r + 1)) rs
      | _ -> ())
    t.merged.Merged.terminals;
  !m

let max_file_slots t =
  let m = ref 0 in
  Array.iter
    (fun ev ->
      match (ev : Event.t) with
      | Event.File_open { file; _ }
      | Event.File_close { file }
      | Event.File_write_all { file; _ }
      | Event.File_read_all { file; _ }
      | Event.File_write_at { file; _ }
      | Event.File_read_at { file; _ } ->
          m := max !m (file + 1)
      | _ -> ())
    t.merged.Merged.terminals;
  !m

let max_comm_slots t =
  let m = ref 1 in
  Array.iter
    (fun ev ->
      match ev with
      | Event.Barrier { comm }
      | Event.Bcast { comm; _ }
      | Event.Reduce { comm; _ }
      | Event.Allreduce { comm; _ }
      | Event.Alltoall { comm; _ }
      | Event.Alltoallv { comm; _ }
      | Event.Allgather { comm; _ }
      | Event.Gather { comm; _ }
      | Event.Scatter { comm; _ }
      | Event.Scan { comm; _ }
      | Event.Exscan { comm; _ }
      | Event.Reduce_scatter { comm; _ }
      | Event.Ibarrier { comm; _ }
      | Event.Ibcast { comm; _ }
      | Event.Iallreduce { comm; _ }
      | Event.Comm_free { comm } ->
          m := max !m (comm + 1)
      | Event.Comm_split { comm; newcomm; _ } | Event.Comm_dup { comm; newcomm } ->
          m := max !m (max comm newcomm + 1)
      | Event.File_open { comm; _ } -> m := max !m (comm + 1)
      | _ -> ())
    t.merged.Merged.terminals;
  !m

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)

let program t ctx =
  let nranks = t.merged.Merged.nranks in
  let rank = Engine.rank ctx in
  let seq = Merged.expand_for_rank t.merged rank in
  let reqs : (int, Engine.request) Hashtbl.t = Hashtbl.create 16 in
  let comms : (int, Engine.comm) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace comms 0 (Engine.comm_world ctx);
  let comm_of id =
    match Hashtbl.find_opt comms id with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "proxy replay: unknown communicator slot %d" id)
  in
  let req_of id =
    match Hashtbl.find_opt reqs id with
    | Some r ->
        Hashtbl.remove reqs id;
        r
    | None -> invalid_arg (Printf.sprintf "proxy replay: unknown request slot %d" id)
  in
  let abs_peer rel = if rel = Call.any_source then rel else (rank + rel) mod nranks in
  let shrunk dt count = Shrink.shrink_count t.shrink ~dt count in
  let files : (int, Engine.file) Hashtbl.t = Hashtbl.create 4 in
  let file_of id =
    match Hashtbl.find_opt files id with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "proxy replay: unknown file slot %d" id)
  in
  let exec_event ev =
    match (ev : Event.t) with
    | Event.Compute cid ->
        List.iter (Engine.compute_work ctx) (Block.works_of_combination t.combos.(cid))
    | Event.Send { rel_peer; tag; dt; count; comm = _ } ->
        Engine.send ctx ~dest:(abs_peer rel_peer) ~tag ~dt ~count:(shrunk dt count)
    | Event.Recv { rel_peer; tag; dt; count; comm = _ } ->
        Engine.recv ctx ~src:(abs_peer rel_peer) ~tag ~dt ~count:(shrunk dt count)
    | Event.Isend ({ rel_peer; tag; dt; count; comm = _ }, slot) ->
        let r = Engine.isend ctx ~dest:(abs_peer rel_peer) ~tag ~dt ~count in
        Hashtbl.replace reqs slot r
    | Event.Irecv ({ rel_peer; tag; dt; count; comm = _ }, slot) ->
        let r = Engine.irecv ctx ~src:(abs_peer rel_peer) ~tag ~dt ~count in
        Hashtbl.replace reqs slot r
    | Event.Wait slot -> Engine.wait ctx (req_of slot)
    | Event.Waitall slots -> Engine.waitall ctx (List.map req_of slots)
    | Event.Sendrecv { send; recv } ->
        Engine.sendrecv ctx ~dest:(abs_peer send.rel_peer) ~send_tag:send.tag
          ~src:(abs_peer recv.rel_peer) ~recv_tag:recv.tag ~dt:send.dt
          ~send_count:(shrunk send.dt send.count) ~recv_count:(shrunk recv.dt recv.count)
    | Event.Barrier { comm } -> Engine.barrier ctx (comm_of comm)
    | Event.Bcast { comm; root; dt; count } ->
        Engine.bcast ctx (comm_of comm) ~root ~dt ~count:(shrunk dt count)
    | Event.Reduce { comm; root; dt; count; op } ->
        Engine.reduce ctx (comm_of comm) ~root ~dt ~count:(shrunk dt count) ~op
    | Event.Allreduce { comm; dt; count; op } ->
        Engine.allreduce ctx (comm_of comm) ~dt ~count:(shrunk dt count) ~op
    | Event.Alltoall { comm; dt; count } ->
        Engine.alltoall ctx (comm_of comm) ~dt ~count:(shrunk dt count)
    | Event.Alltoallv { comm; dt; send_counts } ->
        Engine.alltoallv ctx (comm_of comm) ~dt
          ~send_counts:(Array.map (fun c -> shrunk dt c) send_counts)
    | Event.Allgather { comm; dt; count } ->
        Engine.allgather ctx (comm_of comm) ~dt ~count:(shrunk dt count)
    | Event.Gather { comm; root; dt; count } ->
        Engine.gather ctx (comm_of comm) ~root ~dt ~count:(shrunk dt count)
    | Event.Scatter { comm; root; dt; count } ->
        Engine.scatter ctx (comm_of comm) ~root ~dt ~count:(shrunk dt count)
    | Event.Scan { comm; dt; count; op } ->
        Engine.scan ctx (comm_of comm) ~dt ~count:(shrunk dt count) ~op
    | Event.Exscan { comm; dt; count; op } ->
        Engine.exscan ctx (comm_of comm) ~dt ~count:(shrunk dt count) ~op
    | Event.Reduce_scatter { comm; dt; count; op } ->
        Engine.reduce_scatter ctx (comm_of comm) ~dt ~count:(shrunk dt count) ~op
    | Event.Ibarrier { comm; req } ->
        Hashtbl.replace reqs req (Engine.ibarrier ctx (comm_of comm))
    | Event.Ibcast { comm; root; dt; count; req } ->
        Hashtbl.replace reqs req (Engine.ibcast ctx (comm_of comm) ~root ~dt ~count)
    | Event.Iallreduce { comm; dt; count; op; req } ->
        Hashtbl.replace reqs req (Engine.iallreduce ctx (comm_of comm) ~dt ~count ~op)
    | Event.Comm_split { comm; color; key; newcomm } ->
        let c = Engine.comm_split ctx (comm_of comm) ~color ~key in
        Hashtbl.replace comms newcomm c
    | Event.Comm_dup { comm; newcomm } ->
        let c = Engine.comm_dup ctx (comm_of comm) in
        Hashtbl.replace comms newcomm c
    | Event.Comm_free { comm } ->
        Engine.comm_free ctx (comm_of comm);
        Hashtbl.remove comms comm
    | Event.File_open { comm; file } ->
        Hashtbl.replace files file (Engine.file_open ctx (comm_of comm))
    | Event.File_close { file } ->
        Engine.file_close ctx (file_of file);
        Hashtbl.remove files file
    | Event.File_write_all { file; dt; count } ->
        Engine.file_write_all ctx (file_of file) ~dt ~count:(shrunk dt count)
    | Event.File_read_all { file; dt; count } ->
        Engine.file_read_all ctx (file_of file) ~dt ~count:(shrunk dt count)
    | Event.File_write_at { file; dt; count } ->
        Engine.file_write_at ctx (file_of file) ~dt ~count:(shrunk dt count)
    | Event.File_read_at { file; dt; count } ->
        Engine.file_read_at ctx (file_of file) ~dt ~count:(shrunk dt count)
  in
  Array.iter (fun id -> exec_event t.merged.Merged.terminals.(id)) seq
