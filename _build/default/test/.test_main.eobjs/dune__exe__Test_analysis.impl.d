test/test_analysis.ml: Alcotest Array List Siesta Siesta_analysis Siesta_merge Siesta_mpi Siesta_platform Siesta_trace String
