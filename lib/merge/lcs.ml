(* Longest common subsequence, three ways:

   - [length ~eq]: the classic O(nm) rolling-row DP for arbitrary element
     types (kept for API compatibility and as a reference oracle);
   - [length_int]: the bit-parallel LLCS of Crochemore–Iliopoulos–Pinzon–
     Reid / Hyyro for [int array]s — O(nm / 62) word operations, which is
     what the main-rule clustering loop runs on interned entry ids;
   - [pairs] / [pairs_int]: Hirschberg's divide-and-conquer backtracking in
     O(min(n, m)) memory.  The previous implementation materialized the
     full (n+1)x(m+1) DP table and silently returned no matches above a
     16M-cell budget, which made large-main merges degrade to pure
     concatenation; Hirschberg removes that cliff entirely. *)

(* ------------------------------------------------------------------ *)
(* Generic rolling-row LCS length *)

let length ~eq a b =
  let a, b = if Array.length a >= Array.length b then (a, b) else (b, a) in
  let n = Array.length a and m = Array.length b in
  if m = 0 then 0
  else begin
    let prev = Array.make (m + 1) 0 in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      for j = 1 to m do
        cur.(j) <-
          (if eq a.(i - 1) b.(j - 1) then prev.(j - 1) + 1 else max prev.(j) cur.(j - 1))
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

(* ------------------------------------------------------------------ *)
(* Bit-parallel LLCS over int arrays (Hyyro's formulation):
     L := all-ones over m bits
     per text symbol c:  U := L land M[c];  L := (L + U) lor (L - U)
     llcs = m - popcount L
   with the shorter array as the m-bit register, in 62-bit digits so every
   per-digit add fits a 63-bit OCaml int.  Since U is a subset of L
   digit-wise, the subtraction never borrows across digits; only the
   addition propagates a carry. *)

let word_bits = 62
let word_mask = (1 lsl word_bits) - 1

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let length_int (a : int array) (b : int array) =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let m = Array.length a in
  if m = 0 then 0
  else begin
    let nw = (m + word_bits - 1) / word_bits in
    (* match masks: symbol -> bit vector of its positions in [a] *)
    let masks : (int, int array) Hashtbl.t = Hashtbl.create (2 * m) in
    for i = 0 to m - 1 do
      let w =
        match Hashtbl.find_opt masks a.(i) with
        | Some w -> w
        | None ->
            let w = Array.make nw 0 in
            Hashtbl.add masks a.(i) w;
            w
      in
      w.(i / word_bits) <- w.(i / word_bits) lor (1 lsl (i mod word_bits))
    done;
    let l = Array.make nw word_mask in
    let tail = m mod word_bits in
    let tail_mask = if tail = 0 then word_mask else (1 lsl tail) - 1 in
    l.(nw - 1) <- tail_mask;
    Array.iter
      (fun c ->
        match Hashtbl.find_opt masks c with
        | None -> () (* U = 0: L unchanged *)
        | Some mk ->
            let carry = ref 0 in
            for k = 0 to nw - 1 do
              let lk = Array.unsafe_get l k in
              let u = lk land Array.unsafe_get mk k in
              let sum = lk + u + !carry in
              carry := sum lsr word_bits;
              (* (lk - u) is exact per digit because u subset lk *)
              Array.unsafe_set l k ((sum land word_mask) lor (lk - u))
            done)
      b;
    l.(nw - 1) <- l.(nw - 1) land tail_mask;
    m - Array.fold_left (fun acc w -> acc + popcount w) 0 l
  end

(* ------------------------------------------------------------------ *)
(* Hirschberg backtracking: O(nm) time, O(m) memory, no cell budget.
   Matched pairs are strictly increasing in both coordinates and their
   count equals the LCS length.  Generic and int-specialized variants
   share the structure; the int one runs monomorphic loops with [=] on
   immediates. *)

(* forward:  row.(j) = LCS(a[alo..ahi), b[blo..blo+j))  for j in 0..bn *)
let forward_row ~eq a alo ahi b blo bn =
  let prev = ref (Array.make (bn + 1) 0) and cur = ref (Array.make (bn + 1) 0) in
  for i = alo to ahi - 1 do
    let p = !prev and c = !cur in
    let ai = a.(i) in
    for j = 1 to bn do
      c.(j) <- (if eq ai b.(blo + j - 1) then p.(j - 1) + 1 else max p.(j) c.(j - 1))
    done;
    prev := c;
    cur := p
  done;
  !prev

(* backward: row.(j) = LCS(a[alo..ahi), b[blo+j..bhi))  for j in 0..bn *)
let backward_row ~eq a alo ahi b blo bn =
  let prev = ref (Array.make (bn + 1) 0) and cur = ref (Array.make (bn + 1) 0) in
  for i = ahi - 1 downto alo do
    let p = !prev and c = !cur in
    let ai = a.(i) in
    for j = bn - 1 downto 0 do
      c.(j) <- (if eq ai b.(blo + j) then p.(j + 1) + 1 else max p.(j) c.(j + 1))
    done;
    prev := c;
    cur := p
  done;
  !prev

let rec hirschberg ~eq a alo ahi b blo bhi acc =
  let an = ahi - alo and bn = bhi - blo in
  if an = 0 || bn = 0 then acc
  else if an = 1 then begin
    (* single element: first match in the window, if any *)
    let rec find j = if j >= bhi then acc else if eq a.(alo) b.(j) then (alo, j) :: acc else find (j + 1) in
    find blo
  end
  else begin
    let mid = alo + (an / 2) in
    let f = forward_row ~eq a alo mid b blo bn in
    let g = backward_row ~eq a mid ahi b blo bn in
    let best = ref (-1) and split = ref 0 in
    for k = 0 to bn do
      let v = f.(k) + g.(k) in
      if v > !best then begin
        best := v;
        split := k
      end
    done;
    let k = !split in
    let acc = hirschberg ~eq a alo mid b blo (blo + k) acc in
    hirschberg ~eq a mid ahi b (blo + k) bhi acc
  end

let pairs ~eq a b =
  List.rev (hirschberg ~eq a 0 (Array.length a) b 0 (Array.length b) [])

(* int-specialized rows (monomorphic compares, no closure per cell) *)

let forward_row_int (a : int array) alo ahi (b : int array) blo bn =
  let prev = ref (Array.make (bn + 1) 0) and cur = ref (Array.make (bn + 1) 0) in
  for i = alo to ahi - 1 do
    let p = !prev and c = !cur in
    let ai = Array.unsafe_get a i in
    for j = 1 to bn do
      let v =
        if ai = Array.unsafe_get b (blo + j - 1) then Array.unsafe_get p (j - 1) + 1
        else
          let x = Array.unsafe_get p j and y = Array.unsafe_get c (j - 1) in
          if x >= y then x else y
      in
      Array.unsafe_set c j v
    done;
    prev := c;
    cur := p
  done;
  !prev

let backward_row_int (a : int array) alo ahi (b : int array) blo bn =
  let prev = ref (Array.make (bn + 1) 0) and cur = ref (Array.make (bn + 1) 0) in
  for i = ahi - 1 downto alo do
    let p = !prev and c = !cur in
    let ai = Array.unsafe_get a i in
    for j = bn - 1 downto 0 do
      let v =
        if ai = Array.unsafe_get b (blo + j) then Array.unsafe_get p (j + 1) + 1
        else
          let x = Array.unsafe_get p j and y = Array.unsafe_get c (j + 1) in
          if x >= y then x else y
      in
      Array.unsafe_set c j v
    done;
    prev := c;
    cur := p
  done;
  !prev

let rec hirschberg_int (a : int array) alo ahi (b : int array) blo bhi acc =
  let an = ahi - alo and bn = bhi - blo in
  if an = 0 || bn = 0 then acc
  else if an = 1 then begin
    let v = a.(alo) in
    let rec find j = if j >= bhi then acc else if v = b.(j) then (alo, j) :: acc else find (j + 1) in
    find blo
  end
  else begin
    let mid = alo + (an / 2) in
    let f = forward_row_int a alo mid b blo bn in
    let g = backward_row_int a mid ahi b blo bn in
    let best = ref (-1) and split = ref 0 in
    for k = 0 to bn do
      let v = f.(k) + g.(k) in
      if v > !best then begin
        best := v;
        split := k
      end
    done;
    let k = !split in
    let acc = hirschberg_int a alo mid b blo (blo + k) acc in
    hirschberg_int a mid ahi b (blo + k) bhi acc
  end

let pairs_int (a : int array) (b : int array) =
  List.rev (hirschberg_int a 0 (Array.length a) b 0 (Array.length b) [])

(* ------------------------------------------------------------------ *)
(* Edit distances *)

let indel_distance ~eq a b =
  Array.length a + Array.length b - (2 * length ~eq a b)

let normalized_distance ~eq a b =
  let total = Array.length a + Array.length b in
  if total = 0 then 0.0 else float_of_int (indel_distance ~eq a b) /. float_of_int total

let indel_distance_int a b = Array.length a + Array.length b - (2 * length_int a b)

let normalized_distance_int a b =
  let total = Array.length a + Array.length b in
  if total = 0 then 0.0 else float_of_int (indel_distance_int a b) /. float_of_int total
