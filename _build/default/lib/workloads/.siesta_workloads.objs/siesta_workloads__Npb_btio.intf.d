lib/workloads/npb_btio.mli: Siesta_mpi
