lib/trace/compute_table.ml: Array Printf Siesta_perf
