type t = {
  label : string;
  flops : float;
  div_frac : float;
  int_ops : float;
  mem_refs : float;
  load_frac : float;
  miss_rate : float;
  working_set_bytes : float;
  branches : float;
  mispredict_rate : float;
}

let to_work t : Siesta_platform.Cpu.work =
  {
    ins = t.flops +. t.int_ops +. t.mem_refs +. t.branches;
    loads = t.mem_refs *. t.load_frac;
    stores = t.mem_refs *. (1.0 -. t.load_frac);
    branches = t.branches;
    mispredicts = t.branches *. t.mispredict_rate;
    l1_misses = t.mem_refs *. t.miss_rate;
    div_ops = t.flops *. t.div_frac;
    working_set_bytes = t.working_set_bytes;
  }

let scale k t =
  {
    t with
    flops = k *. t.flops;
    int_ops = k *. t.int_ops;
    mem_refs = k *. t.mem_refs;
    branches = k *. t.branches;
  }

(* Both constructors are calibrated so the resulting counter mix sits
   inside the cone spanned by the 11 proxy code blocks (branch rate
   >= ~0.12 of instructions, prefetch-softened miss rates); this matches
   compiled scalar loop code, which is also what the blocks model. *)

let streaming ~label ~flops ~bytes =
  (* LST counts every retired load/store, most of which hit in cache:
     flop operands dominate for dense kernels, streaming traffic for
     bandwidth-bound ones.  Misses scale with the DRAM traffic only,
     softened by hardware prefetch. *)
  let traffic = bytes /. 8.0 in
  let mem_refs = Float.max traffic (0.45 *. flops) in
  {
    label;
    flops;
    div_frac = 0.002;
    int_ops = 0.2 *. flops;
    mem_refs;
    load_frac = 0.65;
    miss_rate = 0.03 *. traffic /. mem_refs;
    working_set_bytes = bytes;
    (* ~0.15 of total instructions, as scalar compiled loops retire *)
    branches = 0.18 *. ((1.2 *. flops) +. mem_refs);
    mispredict_rate = 0.01;
  }

let compute_bound ~label ~flops ~div_frac =
  {
    label;
    flops;
    div_frac;
    int_ops = 0.2 *. flops;
    mem_refs = 0.5 *. flops;
    load_frac = 0.7;
    miss_rate = 0.004;
    working_set_bytes = 256.0 *. 1024.0;
    branches = 0.18 *. ((1.2 *. flops) +. (0.5 *. flops));
    mispredict_rate = 0.02;
  }
