(* FLASH skeleton: block-structured AMR hydrodynamics (PARAMESH-style).
   Per step each rank fills the guard cells of its blocks — exchanging
   face data with neighbouring ranks, with per-rank message counts that
   depend on how many blocks the rank currently owns — computes the hydro
   update, and agrees on the global timestep with an allreduce; every few
   steps a regrid redistributes blocks (allgather of block counts plus
   point-to-point block transfers).

   The three problems of the paper differ in how refinement evolves:
   - Sedov: a central blast wave; block counts grow over time and are
     concentrated near the domain centre (strong imbalance);
   - Sod: a planar shock tube; mild, slab-shaped imbalance;
   - StirTurb: driven turbulence on a uniform grid: balanced blocks,
     extra forcing-term reductions and heavier per-cell work.

   The rank-to-rank irregularity is what makes FLASH traces hard for
   RSD-style compressors (the paper reports ScalaBench crashing on all
   three), while grammar-based Siesta handles them. *)

module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module K = Siesta_perf.Kernel

type problem = Sedov | Sod | StirTurb

let problem_name = function Sedov -> "sedov" | Sod -> "sod" | StirTurb -> "stirturb"

let default_steps = 14
let cells_per_block = 8 * 8 * 8
let guard_doubles = 8 * 8 * 4 * 8  (* face x guard depth x variables *)
let regrid_interval = 5

(* deterministic pseudo-random stream per (problem, rank, step) *)
let hash problem rank step =
  let p = match problem with Sedov -> 1 | Sod -> 2 | StirTurb -> 3 in
  let h = (p * 0x9E3779B1) lxor (rank * 0x85EBCA77) lxor (step * 0xC2B2AE3D) in
  let h = (h lxor (h lsr 13)) * 0x27D4EB2F land 0x3FFFFFFF in
  h lxor (h lsr 16)

let blocks_of problem ~nranks ~rank ~step =
  let base = max 4 (4096 / nranks) in
  match problem with
  | Sedov ->
      (* refinement grows; centre ranks hold more blocks *)
      let centre = nranks / 2 in
      let d = abs (rank - centre) in
      let growth = 1.0 +. (0.08 *. float_of_int step) in
      let weight = 1.0 +. (3.0 /. float_of_int (1 + d)) in
      int_of_float (float_of_int base *. growth *. weight /. 2.0) + (hash problem rank step mod 3)
  | Sod ->
      (* slab imbalance along the first third of the ranks *)
      let w = if rank < nranks / 3 then 2 else 1 in
      (base * w) + (hash problem rank step mod 2)
  | StirTurb -> base + (hash problem rank (step / 4) mod 2)

let flops_per_cell = function Sedov -> 900.0 | Sod -> 700.0 | StirTurb -> 1400.0

let tag_guard = 60
let tag_regrid = 61

let program problem ?(steps = default_steps) ~nranks () ctx =
  let rank = E.rank ctx in
  let world = E.comm_world ctx in
  let c = Common.coords2_of_rank ~nranks ~rank in
  let neighbors =
    List.filter_map
      (fun (dx, dy) ->
        let nx = c.Common.px + dx and ny = c.Common.py + dy in
        if nx >= 0 && nx < c.Common.nx && ny >= 0 && ny < c.Common.ny then
          Some (Common.rank_of_coords2 { c with Common.px = nx; py = ny })
        else None)
      [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
  in
  (* exchanges must pair up: both sides derive the message count from the
     same (smaller rank, step) hash so sends and receives match *)
  let messages_with peer step =
    let lo = min rank peer and _hi = max rank peer in
    let nb = blocks_of problem ~nranks ~rank:lo ~step in
    1 + (max 0 (min 2 (nb / (8 * max 1 (4096 / nranks / 4)))) + (hash problem lo step mod 2))
  in
  let guard_fill step =
    let reqs = ref [] in
    List.iter
      (fun peer ->
        let m = messages_with peer step in
        for _i = 1 to m do
          reqs := E.irecv ctx ~src:peer ~tag:tag_guard ~dt:D.Double ~count:guard_doubles :: !reqs
        done)
      neighbors;
    List.iter
      (fun peer ->
        let m = messages_with peer step in
        for _i = 1 to m do
          reqs := E.isend ctx ~dest:peer ~tag:tag_guard ~dt:D.Double ~count:guard_doubles :: !reqs
        done)
      neighbors;
    E.waitall ctx (List.rev !reqs)
  in
  let hydro step =
    let nb = blocks_of problem ~nranks ~rank ~step in
    let cells = float_of_int (nb * cells_per_block) in
    E.compute ctx
      {
        (K.streaming ~label:"hydro" ~flops:(flops_per_cell problem *. cells)
           ~bytes:(14.0 *. 8.0 *. cells))
        with
        K.div_frac = 0.03;
        K.mispredict_rate = 0.03;
      }
  in
  let regrid step =
    E.allgather ctx world ~dt:D.Int ~count:1;
    (* shed blocks to the right-hand neighbour when the hash says so *)
    let shed r = hash problem r (step * 17) mod 4 = 0 in
    if rank + 1 < nranks && shed rank then
      E.send ctx ~dest:(rank + 1) ~tag:tag_regrid ~dt:D.Double
        ~count:(cells_per_block * 8 * 2)
    else ();
    if rank > 0 && shed (rank - 1) then
      E.recv ctx ~src:(rank - 1) ~tag:tag_regrid ~dt:D.Double ~count:(cells_per_block * 8 * 2);
    E.barrier ctx world
  in
  E.bcast ctx world ~root:0 ~dt:D.Int ~count:16;
  E.bcast ctx world ~root:0 ~dt:D.Double ~count:8;
  for step = 1 to steps do
    guard_fill step;
    hydro step;
    if problem = StirTurb then begin
      (* stochastic forcing: three reductions for the driving field *)
      E.allreduce ctx world ~dt:D.Double ~count:6 ~op:Siesta_mpi.Op.Sum;
      E.allreduce ctx world ~dt:D.Double ~count:6 ~op:Siesta_mpi.Op.Sum;
      E.allreduce ctx world ~dt:D.Double ~count:1 ~op:Siesta_mpi.Op.Sum
    end;
    E.allreduce ctx world ~dt:D.Double ~count:1 ~op:Siesta_mpi.Op.Min;
    if step mod regrid_interval = 0 then regrid step
  done;
  (* final I/O gather of block metadata to rank 0 *)
  E.gather ctx world ~root:0 ~dt:D.Int ~count:4

(* Serial runs are a real scenario: at nranks=1 the neighbour list is
   empty and the regrid shed has nobody to shed to, so the skeleton
   degrades to compute + self-collectives cleanly. *)
let valid_procs p = p >= 1
