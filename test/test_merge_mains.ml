(* Focused tests of the main-rule merging semantics (Section 2.6.2): what
   the LCS merge does to shared and variant symbols, how rank lists are
   attributed, and when clustering keeps mains apart. *)

module Merged = Siesta_merge.Merged
module MPipe = Siesta_merge.Pipeline
module Rank_list = Siesta_merge.Rank_list
module Terminal_table = Siesta_merge.Terminal_table
module Grammar = Siesta_grammar.Grammar
module Event = Siesta_trace.Event
module D = Siesta_mpi.Datatype

let barrier = Event.Barrier { comm = 0 }
let send c = Event.Send { Event.rel_peer = 1; tag = 0; dt = D.Int; count = c; comm = 0 }

(* merge hand-written per-rank streams and return (merged, global seqs) *)
let merge ?config streams =
  let nranks = Array.length streams in
  let merged = MPipe.merge_streams ?config ~nranks streams in
  Merged.validate merged;
  let seqs = Terminal_table.sequences (Terminal_table.build streams) in
  for r = 0 to nranks - 1 do
    if Merged.expand_for_rank merged r <> seqs.(r) then
      Alcotest.failf "rank %d not reconstructed" r
  done;
  merged

let entries_of merged = merged.Merged.mains.(0)

let test_shared_prefix_suffix_single_rank_lists () =
  (* ranks share [b s10 b]; rank 1 inserts s99 in the middle *)
  let base = [| barrier; send 10; barrier |] in
  let with_extra = [| barrier; send 10; send 99; barrier |] in
  let merged = merge [| base; with_extra; base; base |] in
  Alcotest.(check int) "one cluster" 1 (Array.length merged.Merged.mains);
  let entries = entries_of merged in
  (* shared symbols carry all four ranks; the insertion carries only rank 1 *)
  let shared, variants =
    List.partition (fun (e : Merged.mentry) -> Rank_list.cardinal e.Merged.ranks = 4) entries
  in
  Alcotest.(check int) "three shared entries" 3 (List.length shared);
  Alcotest.(check int) "one variant entry" 1 (List.length variants);
  match variants with
  | [ e ] -> Alcotest.(check (list int)) "attributed to rank 1" [ 1 ] (Rank_list.to_list e.Merged.ranks)
  | _ -> Alcotest.fail "unexpected partition"

let test_disjoint_tails_keep_order () =
  (* after a shared prefix, rank 0 does (s1 s2), rank 1 does (s3 s4): the
     merged main must contain both tails in their own order *)
  let a = [| barrier; send 1; send 2 |] in
  let b = [| barrier; send 3; send 4 |] in
  let merged = merge [| a; b |] in
  let expanded0 = Merged.expand_for_rank merged 0 in
  let expanded1 = Merged.expand_for_rank merged 1 in
  Alcotest.(check int) "rank0 3 events" 3 (Array.length expanded0);
  Alcotest.(check int) "rank1 3 events" 3 (Array.length expanded1)

let test_reps_must_match_to_merge () =
  (* rank 0 loops 10x, rank 1 loops 20x: the run-length exponents differ,
     so the compressed symbols cannot share a main entry *)
  let mk n = Array.concat (List.init n (fun _ -> [| barrier; send 5 |])) in
  let merged = merge ~config:{ MPipe.default_config with cluster_threshold = 1.0 }
      [| mk 10; mk 20 |] in
  List.iter
    (fun (e : Merged.mentry) ->
      if Rank_list.cardinal e.Merged.ranks = 2 then
        (* any shared entry must expand identically for both, which loops
           of different trip counts cannot *)
        ())
    (entries_of merged);
  (* reconstruction (checked in [merge]) is the real assertion here *)
  Alcotest.(check pass) "lossless" () ()

let test_low_threshold_separates_clusters () =
  let a = Array.concat (List.init 8 (fun _ -> [| barrier; send 1 |])) in
  let b = Array.concat (List.init 8 (fun _ -> [| send 2; send 3; send 4 |])) in
  let merged =
    merge ~config:{ MPipe.default_config with cluster_threshold = 0.1 } [| a; b; a; b |]
  in
  Alcotest.(check int) "two clusters" 2 (Array.length merged.Merged.mains);
  (* cluster rank sets partition the ranks *)
  let covered =
    Array.to_list merged.Merged.main_ranks
    |> List.concat_map Rank_list.to_list
    |> List.sort compare
  in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3 ] covered

let test_high_threshold_merges_dissimilar () =
  let a = Array.concat (List.init 8 (fun _ -> [| barrier; send 1 |])) in
  let b = Array.concat (List.init 8 (fun _ -> [| send 2; send 3; send 4 |])) in
  let merged =
    merge ~config:{ MPipe.default_config with cluster_threshold = 1.0 } [| a; b |]
  in
  Alcotest.(check int) "one cluster" 1 (Array.length merged.Merged.mains)

let test_nested_rule_merging () =
  (* a nested loop shared by all ranks must produce shared rules, with the
     rank-variant suffix separate *)
  let inner = [| send 1; send 2 |] in
  let body = Array.concat (List.init 6 (fun _ -> inner)) in
  let stream r =
    Array.concat
      (List.init 4 (fun _ -> Array.append body [| barrier |])
      @ [ (if r = 0 then [| send 99 |] else [||]) ])
  in
  let merged = merge (Array.init 6 stream) in
  let single = merge [| stream 1 |] in
  (* rule sharing: the 6-rank merge needs no more rules than one rank *)
  Alcotest.(check bool) "rules shared" true
    (Array.length merged.Merged.rules <= Array.length single.Merged.rules + 1)

let test_depth_consistency_after_merge () =
  let inner = [| send 1; send 2 |] in
  let body = Array.concat (List.init 6 (fun _ -> inner)) in
  let stream = Array.concat (List.init 5 (fun _ -> Array.append body [| barrier |])) in
  let merged = merge (Array.make 4 stream) in
  let g = { Grammar.main = []; rules = merged.Merged.rules } in
  let depths = Grammar.depth g in
  Array.iter (fun d -> Alcotest.(check bool) "positive depth" true (d >= 1)) depths

let test_empty_streams () =
  let merged = merge [| [||]; [||] |] in
  Alcotest.(check int) "no terminals" 0 (Array.length merged.Merged.terminals);
  Alcotest.(check int) "empty expansion" 0 (Array.length (Merged.expand_for_rank merged 0))

let test_single_rank () =
  let merged = merge [| [| barrier; send 1; barrier |] |] in
  Alcotest.(check int) "one cluster" 1 (Array.length merged.Merged.mains);
  Alcotest.(check int) "covers rank 0" 1 (Rank_list.cardinal merged.Merged.main_ranks.(0))

let suite =
  [
    ("shared prefix/suffix with one insertion", `Quick, test_shared_prefix_suffix_single_rank_lists);
    ("disjoint tails keep their order", `Quick, test_disjoint_tails_keep_order);
    ("different trip counts stay lossless", `Quick, test_reps_must_match_to_merge);
    ("low threshold separates clusters", `Quick, test_low_threshold_separates_clusters);
    ("high threshold merges dissimilar mains", `Quick, test_high_threshold_merges_dissimilar);
    ("nested rules shared across ranks", `Quick, test_nested_rule_merging);
    ("rule depths consistent after merge", `Quick, test_depth_consistency_after_merge);
    ("empty streams", `Quick, test_empty_streams);
    ("single rank", `Quick, test_single_rank);
  ]
