(** Executable proxy-app representation.

    The synthesized proxy in a form our simulated MPI runtime can execute
    directly: the merged grammar plus one block combination per
    computation cluster and the optional shrink plan.  {!Codegen_c} prints
    the same object as a C program; {!program} replays it as a rank
    program, which is how the evaluation measures proxy execution times on
    arbitrary platform/implementation pairs. *)

type t = {
  merged : Siesta_merge.Merged.t;
  combos : float array array;  (** computation cluster id -> x (11 counts) *)
  combo_errors : float array;  (** proxy-search error per cluster *)
  shrink : Shrink.t;
  generated_on : string;  (** platform name the proxy was searched on *)
}

val synthesize :
  platform:Siesta_platform.Spec.t ->
  impl:Siesta_platform.Mpi_impl.t ->
  ?factor:float ->
  merged:Siesta_merge.Merged.t ->
  compute_table:Siesta_trace.Compute_table.t ->
  unit ->
  t
(** Search a block combination for every computation cluster (targets
    divided by [factor] when given) and fit the communication shrink
    regression.  [factor] defaults to 1 (no shrinking). *)

val size_c_bytes : t -> int
(** The [size_C] of Table 3: exported grammar (terminals + rules + merged
    mains) plus the computation-proxy table (11 counts per cluster). *)

val mean_combo_error : t -> float

val program : t -> Siesta_mpi.Engine.ctx -> unit
(** The proxy as an SPMD rank program for {!Siesta_mpi.Engine.run}. *)

val max_request_slots : t -> int
(** Highest pooled request id used plus one (the C code's array size). *)

val max_comm_slots : t -> int
val max_file_slots : t -> int
