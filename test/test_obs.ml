(* Tests for the Siesta_obs telemetry layer: the monotonic clock, the
   in-tree JSON parser, Chrome-trace spans (nesting, ordering,
   well-formedness, the zero-events-when-disabled guarantee), the
   metrics registry (bucket boundaries, concurrent counter increments),
   the leveled logger's filtering, and an end-to-end pipeline smoke that
   exercises the same path as `siesta synth --trace-out`.

   The obs layer is process-global state (that is the point: any module
   can instrument itself without plumbing), so every test restores the
   disabled/empty default on the way out — alcotest runs cases
   sequentially, which makes this sound. *)

module Clock = Siesta_obs.Clock
module Json = Siesta_obs.Json
module Span = Siesta_obs.Span
module Metrics = Siesta_obs.Metrics
module Log = Siesta_obs.Log
module Parallel = Siesta_util.Parallel
module Pipeline = Siesta.Pipeline
module Codegen = Siesta_synth.Codegen_c

(* Leave the global obs state as the rest of the suite expects it:
   everything off and empty. *)
let quiesce () =
  Span.set_enabled false;
  Span.reset ();
  Metrics.set_enabled false;
  Metrics.reset ();
  Log.set_sink_stderr ();
  Log.set_level Log.Warn

let protecting f () = Fun.protect ~finally:quiesce f

let tmp_path suffix =
  Filename.temp_file "siesta_obs_test" suffix

(* naive substring search — keeps the test free of Str *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_s ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_s () in
    if t < !prev then Alcotest.failf "clock ran backwards: %.9f < %.9f" t !prev;
    prev := t
  done;
  let (), dt = Clock.wall (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0.))) in
  Alcotest.(check bool) "wall elapsed >= 0" true (dt >= 0.0);
  let us = Clock.now_us () and s = Clock.now_s () in
  Alcotest.(check bool) "us and s agree to within 1s" true (abs_float ((us /. 1e6) -. s) < 1.0)

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let test_json_roundtrip () =
  let doc = {|{"a": [1, -2.5, 1e3], "b": "x\"y\nA", "c": {"t": true, "n": null}}|} in
  match Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      (match Json.member "a" j with
      | Some a ->
          let nums = List.filter_map Json.to_float_opt (Json.to_list a) in
          Alcotest.(check (list (float 1e-9))) "array" [ 1.0; -2.5; 1000.0 ] nums
      | None -> Alcotest.fail "missing a");
      match Json.member "b" j with
      | Some b ->
          Alcotest.(check (option string)) "escapes decoded" (Some "x\"y\nA") (Json.to_string_opt b)
      | None -> Alcotest.fail "missing b")

let test_json_escape_parses_back () =
  let nasty = "a\"b\\c\nd\te\r \x01 end" in
  let doc = Printf.sprintf "{\"k\": \"%s\"}" (Json.escape nasty) in
  let j = Json.parse_exn doc in
  Alcotest.(check (option string))
    "escape . parse = id" (Some nasty)
    (Option.bind (Json.member "k" j) Json.to_string_opt)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing"; "[1 2]" ]

(* ------------------------------------------------------------------ *)
(* Spans *)

(* Pull the complete ("X") events back out of the Chrome JSON. *)
let complete_events json =
  let j = Json.parse_exn json in
  let events =
    match Json.member "traceEvents" j with
    | Some a -> Json.to_list a
    | None -> Alcotest.fail "no traceEvents array"
  in
  List.filter_map
    (fun e ->
      match Json.member "ph" e with
      | Some ph when Json.to_string_opt ph = Some "X" ->
          let str k = Option.bind (Json.member k e) Json.to_string_opt in
          let num k = Option.bind (Json.member k e) Json.to_float_opt in
          let get o = match o with Some v -> v | None -> Alcotest.fail "malformed event" in
          Some
            ( get (str "name"),
              Option.value (str "cat") ~default:"",
              get (num "ts"),
              get (num "dur"),
              get (num "tid") )
      | _ -> None)
    events

let test_span_disabled_records_nothing () =
  Span.set_enabled false;
  Span.reset ();
  Span.with_ "invisible" (fun () -> ());
  Span.instant "also-invisible";
  Alcotest.(check int) "no events when disabled" 0 (Span.event_count ());
  (* an empty trace must still be a valid document *)
  let j = Json.parse_exn (Span.to_chrome_json ()) in
  Alcotest.(check bool) "empty trace parses" true (Json.member "traceEvents" j <> None)

let test_span_nesting_and_ordering () =
  Span.reset ();
  Span.set_enabled true;
  Span.with_ ~cat:"test" "outer" (fun () ->
      Span.with_ ~cat:"test" "inner1" (fun () -> ignore (Sys.opaque_identity (Clock.now_s ())));
      Span.with_ ~cat:"test" "inner2" (fun () -> ignore (Sys.opaque_identity (Clock.now_s ()))));
  Span.set_enabled false;
  let evs = complete_events (Span.to_chrome_json ()) in
  let find n =
    match List.find_opt (fun (name, _, _, _, _) -> name = n) evs with
    | Some e -> e
    | None -> Alcotest.failf "span %s missing" n
  in
  let _, _, ots, odur, otid = find "outer" in
  let _, _, i1ts, i1dur, i1tid = find "inner1" in
  let _, _, i2ts, i2dur, i2tid = find "inner2" in
  Alcotest.(check bool) "same track" true (otid = i1tid && otid = i2tid);
  (* the Chrome viewer infers nesting from enclosure on one tid.  The
     serializer rounds ts and dur independently to 3 decimals (1 ns), so
     the parsed-back endpoints can disagree by up to ~1.5 ns; allow 2 ns
     of rounding slop. *)
  let eps = 2e-3 (* µs *) in
  let encloses (ts, dur) (ts', dur') =
    ts -. eps <= ts' && ts' +. dur' <= ts +. dur +. eps
  in
  Alcotest.(check bool) "outer encloses inner1" true (encloses (ots, odur) (i1ts, i1dur));
  Alcotest.(check bool) "outer encloses inner2" true (encloses (ots, odur) (i2ts, i2dur));
  Alcotest.(check bool) "inner1 before inner2" true (i1ts +. i1dur <= i2ts +. eps);
  Alcotest.(check bool) "durations non-negative" true (odur >= 0.0 && i1dur >= 0.0 && i2dur >= 0.0)

let test_span_survives_exceptions () =
  Span.reset ();
  Span.set_enabled true;
  (try Span.with_ "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  Span.set_enabled false;
  let evs = complete_events (Span.to_chrome_json ()) in
  Alcotest.(check bool) "span recorded despite raise" true
    (List.exists (fun (n, _, _, _, _) -> n = "raiser") evs)

let test_span_chrome_json_shape () =
  Span.reset ();
  Span.set_enabled true;
  Span.with_ ~attrs:[ ("answer", "42") ] "shaped" (fun () -> ());
  Span.instant "marker";
  Span.set_enabled false;
  let j = Json.parse_exn (Span.to_chrome_json ()) in
  let events = Json.to_list (Option.get (Json.member "traceEvents" j)) in
  (* every event carries the mandatory keys, and thread metadata exists *)
  let phs =
    List.map
      (fun e ->
        let ph = Option.get (Json.to_string_opt (Option.get (Json.member "ph" e))) in
        (* metadata events carry no timestamp; everything else must *)
        let mandatory = if ph = "M" then [ "name"; "ph"; "pid"; "tid" ]
                        else [ "name"; "ph"; "ts"; "pid"; "tid" ] in
        List.iter
          (fun k ->
            if Json.member k e = None then Alcotest.failf "%s event missing %S" ph k)
          mandatory;
        ph)
      events
  in
  Alcotest.(check bool) "has complete event" true (List.mem "X" phs);
  Alcotest.(check bool) "has instant event" true (List.mem "i" phs);
  Alcotest.(check bool) "has thread_name metadata" true (List.mem "M" phs);
  let shaped =
    List.find
      (fun e -> Json.member "name" e |> Option.get |> Json.to_string_opt = Some "shaped")
      events
  in
  Alcotest.(check (option string))
    "args preserved" (Some "42")
    (Option.bind (Json.member "args" shaped) (fun a ->
         Option.bind (Json.member "answer" a) Json.to_string_opt))

(* ------------------------------------------------------------------ *)
(* Histogram buckets *)

let test_histogram_bucket_boundaries () =
  let module H = Metrics.Histo in
  (* upper bounds are inclusive: a value equal to a bucket's upper bound
     lands in that bucket, a hair above lands in the next *)
  for i = 0 to H.nbuckets - 2 do
    let ub = H.bucket_upper i in
    if Float.is_finite ub then begin
      Alcotest.(check int) (Printf.sprintf "ub(%d) inclusive" i) i (H.bucket_index ub);
      Alcotest.(check bool)
        (Printf.sprintf "just above ub(%d) escalates" i)
        true
        (H.bucket_index (ub *. 1.0001) > i)
    end
  done;
  (* underflow and overflow *)
  Alcotest.(check int) "zero -> underflow" 0 (H.bucket_index 0.0);
  Alcotest.(check int) "tiny -> underflow" 0 (H.bucket_index 1e-12);
  Alcotest.(check int) "huge -> overflow" (H.nbuckets - 1) (H.bucket_index 1e9);
  Alcotest.(check bool) "overflow ub is inf" true (H.bucket_upper (H.nbuckets - 1) = infinity);
  (* monotone: larger values never map to smaller buckets *)
  let last = ref (-1) in
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      if i < !last then Alcotest.failf "bucket_index not monotone at %g" v;
      last := i)
    [ 1e-10; 1e-9; 5e-9; 1e-6; 3.16e-4; 1e-3; 0.02; 0.5; 1.0; 31.6; 999.0; 1e4 ];
  (* count / sum / quantile *)
  let h = H.create () in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (H.quantile h 0.5));
  List.iter (H.observe h) [ 0.001; 0.002; 0.004; 1.0 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check (float 1e-9)) "sum" 1.007 (H.sum h);
  (* interpolated: p99's continuous rank (3.96 of 4) falls inside the
     largest value's bucket, so the estimate sits strictly inside that
     bucket rather than snapping to its upper bound *)
  let q99 = H.quantile h 0.99 in
  let i_max = H.bucket_index 1.0 in
  Alcotest.(check bool) "p99 inside the largest value's bucket" true
    (q99 > H.bucket_upper (i_max - 1) && q99 <= H.bucket_upper i_max);
  let nz = H.nonzero_buckets h in
  Alcotest.(check int) "nonzero bucket hits total" 4
    (List.fold_left (fun a (_, _, c) -> a + c) 0 nz)

let test_histogram_bucket_merge () =
  let module H = Metrics.Histo in
  (* a source histogram with hits across several decades (finite
     buckets; the overflow bucket is checked separately below) *)
  let src = H.create () in
  List.iter (H.observe src)
    [ 0.0; 1e-12; 2e-6; 2e-6; 3.1e-4; 1e-3; 1e-3; 1e-3; 0.02; 0.5; 31.6 ];
  (* the replay idiom merge_into replaces: one observe at the bucket's
     upper bound per recorded observation *)
  let replayed = H.create () in
  List.iter
    (fun (_, ub, c) ->
      for _ = 1 to c do
        H.observe replayed ub
      done)
    (H.nonzero_buckets src);
  let merged = H.create () in
  H.merge_into ~src ~dst:merged;
  (* bucket-for-bucket equality with the replay path *)
  Alcotest.(check int) "count preserved" (H.count src) (H.count merged);
  Alcotest.(check int) "count matches replay" (H.count replayed) (H.count merged);
  Alcotest.(check bool) "buckets match replay" true
    (H.nonzero_buckets replayed = H.nonzero_buckets merged);
  Alcotest.(check (float 1e-9)) "sum matches replay" (H.sum replayed) (H.sum merged);
  (* merging into a non-empty destination accumulates *)
  H.merge_into ~src ~dst:merged;
  Alcotest.(check int) "second merge doubles" (2 * H.count src) (H.count merged);
  (* overflow observations merge at the largest finite bound: the count
     stays in the overflow bucket but the sum stays finite *)
  let ovf = H.create () in
  H.observe ovf 1e9;
  let ovf_merged = H.create () in
  H.merge_into ~src:ovf ~dst:ovf_merged;
  Alcotest.(check int) "overflow count preserved" 1 (H.count ovf_merged);
  (match H.nonzero_buckets ovf_merged with
  | [ (i, ub, 1) ] ->
      Alcotest.(check int) "lands in overflow bucket" (H.nbuckets - 1) i;
      Alcotest.(check bool) "overflow ub infinite" true (ub = infinity)
  | _ -> Alcotest.fail "expected a single overflow bucket hit");
  Alcotest.(check bool) "overflow sum finite" true (Float.is_finite (H.sum ovf_merged));
  Alcotest.(check (float 1e-9)) "overflow sum at largest finite bound"
    (H.bucket_upper (H.nbuckets - 2))
    (H.sum ovf_merged);
  (* add_count input validation *)
  let h = H.create () in
  Alcotest.(check bool) "bad bucket rejected" true
    (match H.add_count h H.nbuckets 1 with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "negative count rejected" true
    (match H.add_count h 0 (-1) with exception Invalid_argument _ -> true | () -> false);
  H.add_count h 0 0;
  Alcotest.(check int) "zero count is a no-op" 0 (H.count h);
  (* the registry-level wrapper is gated on the enable flag *)
  Metrics.reset ();
  Metrics.set_enabled false;
  Metrics.add_histo ~src (Metrics.histogram "test.merge.h");
  (match List.assoc_opt "test.merge.h" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram h) -> Alcotest.(check int) "disabled: no-op" 0 (H.count h)
  | _ -> Alcotest.fail "histogram not registered");
  Metrics.set_enabled true;
  Metrics.add_histo ~src (Metrics.histogram "test.merge.h");
  (match List.assoc_opt "test.merge.h" (Metrics.snapshot ()) with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check int) "enabled: merged" (H.count src) (H.count h)
  | _ -> Alcotest.fail "histogram not registered");
  Metrics.set_enabled false;
  Metrics.reset ()

(* Satellite of the run-ledger PR: quantile edge semantics.  Empty
   histograms, q outside [0,1], q in {0,1}, and within-bucket linear
   interpolation are all pinned down — `runs compare` and the bench
   gates consume these numbers. *)
let test_quantile_edges () =
  let module H = Metrics.Histo in
  (* empty: every q is nan *)
  let h = H.create () in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "empty q=%g is nan" q)
        true
        (Float.is_nan (H.quantile h q)))
    [ 0.0; 0.5; 1.0 ];
  (* single bucket: q=0 is its lower edge, q=1 its upper bound, and the
     estimate moves linearly in between *)
  let h = H.create () in
  for _ = 1 to 10 do
    H.observe h 0.02
  done;
  let i = H.bucket_index 0.02 in
  let lower = H.bucket_upper (i - 1) and upper = H.bucket_upper i in
  Alcotest.(check (float 1e-12)) "q=0 is the occupied bucket's lower edge" lower
    (H.quantile h 0.0);
  Alcotest.(check (float 1e-12)) "q=1 is the occupied bucket's upper bound" upper
    (H.quantile h 1.0);
  Alcotest.(check (float 1e-12)) "q=0.5 is the bucket midpoint" (lower +. (0.5 *. (upper -. lower)))
    (H.quantile h 0.5);
  (* q is clamped, not rejected *)
  Alcotest.(check (float 1e-12)) "q<0 clamps to 0" (H.quantile h 0.0) (H.quantile h (-3.0));
  Alcotest.(check (float 1e-12)) "q>1 clamps to 1" (H.quantile h 1.0) (H.quantile h 7.0);
  (* monotone in q across several occupied buckets, and always finite *)
  let h = H.create () in
  List.iter (H.observe h) [ 1e-6; 1e-4; 0.01; 0.5; 2.0; 40.0; 1e9 ];
  let prev = ref neg_infinity in
  for k = 0 to 20 do
    let q = float_of_int k /. 20.0 in
    let v = H.quantile h q in
    Alcotest.(check bool) (Printf.sprintf "finite at q=%g" q) true (Float.is_finite v);
    if v < !prev then Alcotest.failf "quantile not monotone at q=%g (%g < %g)" q v !prev;
    prev := v
  done;
  (* the overflow observation keeps q=1 at the largest finite bound *)
  Alcotest.(check (float 1e-12)) "overflow q=1 at largest finite bound"
    (H.bucket_upper (H.nbuckets - 2))
    (H.quantile h 1.0)

(* Satellite: Siesta_obs.Json must round-trip Metrics.to_json exactly —
   the run ledger stores that snapshot and `runs compare` reads it back.
   Escaped metric names, 2^53-magnitude counters and histogram bucket
   arrays all survive parse -> to_string -> parse unchanged. *)
let test_metrics_json_roundtrip () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Metrics.incr (Metrics.counter "plain.counter") 3;
  Metrics.incr (Metrics.counter "esc\"aped\\name\tweird") 1;
  Metrics.incr (Metrics.counter "run.id{id=\"deadbeef\"}") 1;
  Metrics.incr (Metrics.counter "big.counter") ((1 lsl 53) - 1);
  Metrics.set (Metrics.gauge "neg.gauge") (-0.125);
  let h = Metrics.histogram "some.h" in
  List.iter (Metrics.observe h) [ 1e-6; 0.02; 0.5; 123.0 ];
  let txt = Metrics.to_json () in
  Metrics.set_enabled false;
  Metrics.reset ();
  let j = Json.parse_exn txt in
  let counter name =
    match Option.bind (Json.member name j) (Json.member "value") with
    | Some (Json.Num v) -> v
    | _ -> Alcotest.failf "counter %S missing from snapshot" name
  in
  Alcotest.(check (float 0.0)) "plain counter exact" 3.0 (counter "plain.counter");
  Alcotest.(check (float 0.0)) "escaped name survives" 1.0 (counter "esc\"aped\\name\tweird");
  Alcotest.(check (float 0.0)) "labeled run.id metric present" 1.0
    (counter "run.id{id=\"deadbeef\"}");
  (* 2^53 - 1 is the largest odd integer a float carries exactly; the
     printer and parser must both preserve it bit-for-bit *)
  Alcotest.(check (float 0.0)) "2^53-1 counter exact"
    (float_of_int ((1 lsl 53) - 1))
    (counter "big.counter");
  (match Option.bind (Json.member "some.h" j) (Json.member "buckets") with
  | Some (Json.Arr buckets) ->
      Alcotest.(check int) "four occupied buckets" 4 (List.length buckets);
      let total =
        List.fold_left
          (fun acc b ->
            match Json.member "count" b with Some (Json.Num c) -> acc +. c | _ -> acc)
          0.0 buckets
      in
      Alcotest.(check (float 0.0)) "bucket counts sum" 4.0 total
  | _ -> Alcotest.fail "histogram buckets missing");
  (* printer round-trip: parse (to_string j) is structurally identical,
     including nested arrays and the nan/inf -> null rule *)
  Alcotest.(check bool) "parse . to_string = id" true (Json.parse_exn (Json.to_string j) = j);
  let weird =
    Json.Obj
      [
        ("nan", Json.Num Float.nan);
        ("inf", Json.Num Float.infinity);
        ("nested", Json.Arr [ Json.Arr [ Json.Str "<script>"; Json.Num 0.1 ]; Json.Null ]);
      ]
  in
  let reparsed = Json.parse_exn (Json.to_string weird) in
  Alcotest.(check bool) "nan prints as null" true (Json.member "nan" reparsed = Some Json.Null);
  Alcotest.(check bool) "inf prints as null" true (Json.member "inf" reparsed = Some Json.Null);
  Alcotest.(check bool) "0.1 survives shortest-round-trip printing" true
    (Json.to_string reparsed = Json.to_string (Json.parse_exn (Json.to_string reparsed)))

(* Satellite: the run id correlates the telemetry streams — log lines
   carry run=<short>, span traces stamp otherData.run_id, and the id is
   env-overridable so a driver can pin it. *)
let test_run_id_correlation () =
  let module Run_id = Siesta_obs.Run_id in
  let saved = Run_id.get () in
  Fun.protect ~finally:(fun () -> Run_id.set saved) @@ fun () ->
  Alcotest.(check bool) "default id is non-empty hex" true
    (String.length saved > 0
    && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) saved);
  Run_id.set "feedc0ffee123456";
  Alcotest.(check string) "set/get" "feedc0ffee123456" (Run_id.get ());
  Alcotest.(check string) "short is an 8-char prefix" "feedc0ff" (Run_id.short ());
  Run_id.set "   ";
  Alcotest.(check string) "blank set is ignored" "feedc0ffee123456" (Run_id.get ());
  (* log lines carry the id *)
  let path = tmp_path ".log" in
  Log.set_sink_file path;
  Log.set_level Log.Info;
  Log.info (fun () -> ("runid.test", [ ("k", "v") ]));
  Log.flush ();
  Log.set_sink_stderr ();
  let line =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  Alcotest.(check bool) "log line carries run=<short>" true
    (contains line "run=feedc0ff");
  (* span traces stamp the full id into otherData *)
  Span.reset ();
  Span.set_enabled true;
  Span.with_ "stamped" (fun () -> ());
  Span.set_enabled false;
  let j = Json.parse_exn (Span.to_chrome_json ()) in
  Alcotest.(check (option string))
    "otherData.run_id is the full id" (Some "feedc0ffee123456")
    (Option.bind (Json.member "otherData" j) (fun o ->
         Option.bind (Json.member "run_id" o) Json.to_string_opt));
  Span.reset ()

let test_metrics_registry () =
  Metrics.reset ();
  let c1 = Metrics.counter "test.reg.c" in
  let c2 = Metrics.counter "test.reg.c" in
  (* find-or-create is idempotent: both handles hit the same cell *)
  Metrics.set_enabled true;
  Metrics.incr c1 3;
  Metrics.incr c2 4;
  Alcotest.(check int) "same cell" 7 (Metrics.counter_value c1);
  (* disabled increments are dropped *)
  Metrics.set_enabled false;
  Metrics.incr c1 100;
  Alcotest.(check int) "disabled incr is a no-op" 7 (Metrics.counter_value c1);
  (* kind mismatch is a programming error *)
  (match Metrics.gauge "test.reg.c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not detected");
  Metrics.set_enabled true;
  Metrics.set (Metrics.gauge "test.reg.g") 2.5;
  Metrics.observe (Metrics.histogram "test.reg.h") 0.01;
  Metrics.set_enabled false;
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true (names = List.sort compare names);
  Alcotest.(check bool) "all three registered" true
    (List.for_all (fun n -> List.mem n names) [ "test.reg.c"; "test.reg.g"; "test.reg.h" ]);
  (* both serializations are well-formed; JSON parses back *)
  let j = Json.parse_exn (Metrics.to_json ()) in
  Alcotest.(check bool) "metrics JSON parses" true (j <> Json.Null);
  Alcotest.(check bool) "text snapshot mentions counter" true
    (contains (Metrics.to_text ()) "test.reg.c")

(* ------------------------------------------------------------------ *)
(* Concurrent counters (qcheck) *)

let prop_concurrent_counter_exact =
  QCheck.Test.make ~name:"concurrent counter increments sum exactly" ~count:30
    QCheck.(pair (int_range 2 4) (list_of_size Gen.(1 -- 50) (int_range 1 100)))
    (fun (ndomains, deltas) ->
      Metrics.reset ();
      Metrics.set_enabled true;
      let c = Metrics.counter "test.conc.c" in
      let per_domain () = List.iter (fun d -> Metrics.incr c d) deltas in
      let doms = List.init ndomains (fun _ -> Domain.spawn per_domain) in
      List.iter Domain.join doms;
      let expect = ndomains * List.fold_left ( + ) 0 deltas in
      let got = Metrics.counter_value c in
      Metrics.set_enabled false;
      Metrics.reset ();
      if got <> expect then QCheck.Test.fail_reportf "lost updates: got %d, want %d" got expect
      else true)

(* ------------------------------------------------------------------ *)
(* Logger *)

let test_log_level_filtering () =
  let path = tmp_path ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Log.set_sink_file path;
      Log.set_level Log.Info;
      let debug_forced = ref false in
      Log.debug (fun () ->
          debug_forced := true;
          ("should.not.appear", []));
      Log.info (fun () -> ("visible.info", [ ("k", "v"); ("spaced", "a b") ]));
      Log.warn (fun () -> ("visible.warn", []));
      Log.set_level Log.Off;
      Log.warn (fun () -> ("off.drops.warn", []));
      Log.set_sink_stderr () (* flushes + closes the file sink *);
      let ic = open_in path in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      let has s = contains content s in
      Alcotest.(check bool) "debug filtered" false (has "should.not.appear");
      Alcotest.(check bool) "debug thunk never forced" false !debug_forced;
      Alcotest.(check bool) "info emitted" true (has "visible.info");
      Alcotest.(check bool) "kv rendered" true (has "k=v");
      Alcotest.(check bool) "spaced value quoted" true (has "spaced=\"a b\"");
      Alcotest.(check bool) "warn emitted" true (has "visible.warn");
      Alcotest.(check bool) "off drops everything" false (has "off.drops.warn"))

let test_log_level_parsing () =
  List.iter
    (fun (s, l) -> Alcotest.(check bool) s true (Log.level_of_string s = l))
    [
      ("debug", Some Log.Debug);
      ("info", Some Log.Info);
      ("warn", Some Log.Warn);
      ("off", Some Log.Off);
      ("banana", None);
    ];
  Alcotest.(check string) "name roundtrip" "info" (Log.level_name Log.Info)

(* ------------------------------------------------------------------ *)
(* Parallel pool stats + per-worker tracks *)

let test_parallel_stats_and_tracks () =
  Span.reset ();
  Span.set_enabled true;
  let items = 32 in
  (* each item spins ~2ms so the spawned workers get to claim some
     ranges before the submitting domain drains the queue *)
  let spin () =
    let t0 = Clock.now_s () in
    while Clock.now_s () -. t0 < 0.002 do
      ignore (Sys.opaque_identity (sqrt 2.0))
    done
  in
  let hits = Array.make items 0 in
  let stats =
    Parallel.with_pool ~domains:3 (fun pool ->
        Parallel.run pool ~chunks:items (fun i ->
            hits.(i) <- hits.(i) + 1;
            spin ());
        Parallel.stats pool)
  in
  Span.set_enabled false;
  Alcotest.(check int) "3 slots" 3 stats.Parallel.domains;
  Alcotest.(check int) "requested 3" 3 stats.Parallel.requested;
  Alcotest.(check bool) "explicit sizing never clamped" false stats.Parallel.clamped;
  Alcotest.(check int) "one job" 1 stats.Parallel.jobs;
  (* a fresh pool is uncalibrated, so the cost gate dispatches *)
  Alcotest.(check int) "dispatched" 1 stats.Parallel.dispatched_jobs;
  Alcotest.(check int) "nothing inlined" 0 stats.Parallel.inline_jobs;
  Alcotest.(check bool) "each item exactly once" true (Array.for_all (( = ) 1) hits);
  let ranges = Array.fold_left ( + ) 0 stats.Parallel.chunks_done in
  (* ranges are adaptive: at least one, at most one per item *)
  Alcotest.(check bool)
    (Printf.sprintf "claimed ranges in [1, %d] (got %d)" items ranges)
    true
    (ranges >= 1 && ranges <= items);
  Alcotest.(check bool) "busy time non-negative" true
    (Array.for_all (fun s -> s >= 0.0) stats.Parallel.busy_s);
  Alcotest.(check bool) "estimator calibrated" false
    (Float.is_nan stats.Parallel.est_item_cost_s);
  Alcotest.(check int) "queue-wait observed per claimed range" ranges
    (Metrics.Histo.count stats.Parallel.queue_wait);
  (* the per-chunk spans must land on more than one track: the pool's
     workers each carry their own domain id *)
  let evs = complete_events (Span.to_chrome_json ()) in
  let chunk_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun (n, _, _, _, tid) -> if n = "parallel.chunk" then Some tid else None)
         evs)
  in
  Alcotest.(check bool) "chunk spans recorded" true (chunk_tids <> []);
  Alcotest.(check bool)
    (Printf.sprintf "chunk spans on >1 track (got %d)" (List.length chunk_tids))
    true
    (List.length chunk_tids > 1)

(* ------------------------------------------------------------------ *)
(* End-to-end: the --trace-out path *)

let test_pipeline_trace_out_smoke () =
  let path = tmp_path ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Span.reset ();
      Metrics.reset ();
      Span.set_enabled true;
      Metrics.set_enabled true;
      let spec = Pipeline.spec ~workload:"CG" ~nranks:8 () in
      let traced = Pipeline.trace spec in
      let art = Pipeline.synthesize traced in
      ignore (Codegen.generate art.Pipeline.proxy);
      Span.write ~path;
      Span.set_enabled false;
      Metrics.set_enabled false;
      (* stage timings mirror the spans *)
      let stages = List.map fst art.Pipeline.timings in
      Alcotest.(check (list string)) "artifact timings"
        [ "trace.original"; "trace.instrumented"; "merge"; "synthesize" ]
        stages;
      List.iter
        (fun (n, s) -> if s < 0.0 then Alcotest.failf "negative stage time for %s" n)
        art.Pipeline.timings;
      (* the emitted file is a Chrome trace with >= 5 distinct pipeline
         stage spans — same acceptance as `siesta check-trace` *)
      let ic = open_in path in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      let evs = complete_events content in
      let stage_names =
        List.sort_uniq compare
          (List.filter_map
             (fun (n, cat, _, _, _) -> if cat = "pipeline" then Some n else None)
             evs)
      in
      Alcotest.(check bool)
        (Printf.sprintf "(>= 5 distinct pipeline stages, got %d: %s)"
           (List.length stage_names)
           (String.concat ", " stage_names))
        true
        (List.length stage_names >= 5);
      (* metrics carry the per-MPI-call counters and the QP iterations *)
      let names = List.map fst (Metrics.snapshot ()) in
      let has_prefix p = List.exists (fun n -> String.length n >= String.length p
                                              && String.sub n 0 (String.length p) = p) names in
      Alcotest.(check bool) "per-call MPI counters" true (has_prefix "mpi.calls.");
      Alcotest.(check bool) "per-call MPI bytes" true (has_prefix "mpi.bytes.");
      Alcotest.(check bool) "qp iteration counter" true
        (List.mem "synth.search.qp_iterations" names))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "clock monotonic" `Quick (protecting test_clock_monotonic);
    Alcotest.test_case "json roundtrip" `Quick (protecting test_json_roundtrip);
    Alcotest.test_case "json escape parses back" `Quick (protecting test_json_escape_parses_back);
    Alcotest.test_case "json rejects garbage" `Quick (protecting test_json_rejects_garbage);
    Alcotest.test_case "span disabled records nothing" `Quick
      (protecting test_span_disabled_records_nothing);
    Alcotest.test_case "span nesting and ordering" `Quick
      (protecting test_span_nesting_and_ordering);
    Alcotest.test_case "span survives exceptions" `Quick (protecting test_span_survives_exceptions);
    Alcotest.test_case "chrome json shape" `Quick (protecting test_span_chrome_json_shape);
    Alcotest.test_case "histogram bucket boundaries" `Quick
      (protecting test_histogram_bucket_boundaries);
    Alcotest.test_case "histogram bucket-level merge" `Quick
      (protecting test_histogram_bucket_merge);
    Alcotest.test_case "quantile edge semantics" `Quick (protecting test_quantile_edges);
    Alcotest.test_case "metrics json roundtrip" `Quick (protecting test_metrics_json_roundtrip);
    Alcotest.test_case "run id correlation" `Quick (protecting test_run_id_correlation);
    Alcotest.test_case "metrics registry" `Quick (protecting test_metrics_registry);
    QCheck_alcotest.to_alcotest prop_concurrent_counter_exact;
    Alcotest.test_case "log level filtering" `Quick (protecting test_log_level_filtering);
    Alcotest.test_case "log level parsing" `Quick (protecting test_log_level_parsing);
    Alcotest.test_case "parallel stats and worker tracks" `Quick
      (protecting test_parallel_stats_and_tracks);
    Alcotest.test_case "pipeline trace-out smoke" `Slow
      (protecting test_pipeline_trace_out_smoke);
  ]
