(* SWEEP3D skeleton: discrete-ordinates neutron transport on a 2-D process
   grid.  The solve sweeps 8 octants; within an octant, k-plane blocks
   pipeline as a wavefront — each rank receives the inflow faces from its
   upstream i- and j-neighbours, computes the block of cells and angles,
   and forwards its outflow faces downstream.  The 1000^3 problem of the
   paper determines the per-rank volumes. *)

module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module K = Siesta_perf.Kernel

let default_timesteps = 3
let grid_n = 1000
let k_blocks = 10
let angles_per_octant = 6

let tag_i = 50
let tag_j = 51

let program ?(timesteps = default_timesteps) ~nranks () ctx =
  let rank = E.rank ctx in
  let c = Common.coords2_of_rank ~nranks ~rank in
  let world = E.comm_world ctx in
  let nx_loc = grid_n / c.Common.nx and ny_loc = grid_n / c.Common.ny in
  let nz_block = grid_n / k_blocks in
  let i_face = ny_loc * nz_block * angles_per_octant in
  let j_face = nx_loc * nz_block * angles_per_octant in
  let block_kernel =
    K.streaming ~label:"sweep-block"
      ~flops:(60.0 *. float_of_int (nx_loc * ny_loc * nz_block * angles_per_octant / 16))
      ~bytes:(8.0 *. float_of_int (nx_loc * ny_loc * nz_block))
  in
  let rank_at px py = (py * c.Common.nx) + px in
  let octant_sweep (di, dj) =
    (* upstream/downstream along i (x axis) and j (y axis) *)
    let up_i = if di > 0 then c.Common.px - 1 else c.Common.px + 1 in
    let dn_i = if di > 0 then c.Common.px + 1 else c.Common.px - 1 in
    let up_j = if dj > 0 then c.Common.py - 1 else c.Common.py + 1 in
    let dn_j = if dj > 0 then c.Common.py + 1 else c.Common.py - 1 in
    let has_up_i = up_i >= 0 && up_i < c.Common.nx in
    let has_dn_i = dn_i >= 0 && dn_i < c.Common.nx in
    let has_up_j = up_j >= 0 && up_j < c.Common.ny in
    let has_dn_j = dn_j >= 0 && dn_j < c.Common.ny in
    for _kb = 1 to k_blocks do
      if has_up_i then E.recv ctx ~src:(rank_at up_i c.Common.py) ~tag:tag_i ~dt:D.Double ~count:i_face;
      if has_up_j then E.recv ctx ~src:(rank_at c.Common.px up_j) ~tag:tag_j ~dt:D.Double ~count:j_face;
      E.compute ctx block_kernel;
      if has_dn_i then E.send ctx ~dest:(rank_at dn_i c.Common.py) ~tag:tag_i ~dt:D.Double ~count:i_face;
      if has_dn_j then E.send ctx ~dest:(rank_at c.Common.px dn_j) ~tag:tag_j ~dt:D.Double ~count:j_face
    done
  in
  let octants = [ (1, 1); (-1, 1); (1, -1); (-1, -1); (1, 1); (-1, 1); (1, -1); (-1, -1) ] in
  E.bcast ctx world ~root:0 ~dt:D.Int ~count:6;
  for _t = 1 to timesteps do
    List.iter octant_sweep octants;
    (* flux convergence check *)
    E.allreduce ctx world ~dt:D.Double ~count:1 ~op:Siesta_mpi.Op.Max
  done;
  E.barrier ctx world

let valid_procs p = p >= 1
