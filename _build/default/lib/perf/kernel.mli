(** Workload computation kernels.

    A kernel descriptor characterizes one computation phase of a traced
    program (e.g. "the y-solve of BT on one rank's sub-block") in
    platform-independent terms.  {!to_work} lowers it to a
    {!Siesta_platform.Cpu.work} signature, which the CPU model then prices
    per platform.  This replaces profiling real binaries with PAPI. *)

type t = {
  label : string;
  flops : float;  (** floating-point operations *)
  div_frac : float;  (** fraction of flops that are long-latency divides *)
  int_ops : float;  (** integer ALU operations *)
  mem_refs : float;  (** load + store operations *)
  load_frac : float;  (** fraction of [mem_refs] that are loads *)
  miss_rate : float;  (** L1 data-cache misses per memory reference *)
  working_set_bytes : float;  (** resident footprint of the phase *)
  branches : float;  (** conditional branches *)
  mispredict_rate : float;  (** mispredictions per branch *)
}

val to_work : t -> Siesta_platform.Cpu.work

val scale : float -> t -> t
(** Scale all event counts (not the working set) by a factor; used to size
    kernels per iteration/per rank. *)

val streaming : label:string -> flops:float -> bytes:float -> t
(** A convenience constructor for bandwidth-bound stencil/stream phases:
    one load+store pair per 8 flops-ish, miss rate set by streaming through
    [bytes] of data with 64-byte lines. *)

val compute_bound : label:string -> flops:float -> div_frac:float -> t
(** A convenience constructor for cache-resident compute phases. *)
