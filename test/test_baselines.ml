(* Tests for the comparator reimplementations: MINIME, Pilgrim,
   ScalaBench. *)

module Minime = Siesta_baselines.Minime
module Pilgrim = Siesta_baselines.Pilgrim
module Scalabench = Siesta_baselines.Scalabench
module Proxy_search = Siesta_synth.Proxy_search
module Counters = Siesta_perf.Counters
module K = Siesta_perf.Kernel
module E = Siesta_mpi.Engine
module D = Siesta_mpi.Datatype
module Event = Siesta_trace.Event
module Recorder = Siesta_trace.Recorder
module Spec = Siesta_platform.Spec
module Impl = Siesta_platform.Mpi_impl

let platform = Spec.platform_a
let impl = Impl.openmpi

let target_of kernel = Counters.of_work platform.Spec.cpu (K.to_work kernel)

(* ------------------------------------------------------------------ *)
(* MINIME *)

let test_minime_converges () =
  let target = target_of (K.streaming ~label:"k" ~flops:1e6 ~bytes:8e6) in
  let sol = Minime.search ~platform ~target in
  Alcotest.(check bool) "under 25% on its own metrics" true (sol.Minime.ratio_error < 0.25);
  Array.iter (fun v -> if v < 0.0 then Alcotest.fail "negative repetition") sol.Minime.x

let test_minime_scales_to_instruction_count () =
  let target = target_of (K.compute_bound ~label:"k" ~flops:1e7 ~div_frac:0.02) in
  let sol = Minime.search ~platform ~target in
  let ratio = sol.Minime.achieved.Counters.ins /. target.Counters.ins in
  Alcotest.(check bool) "duration calibrated" true (ratio > 0.5 && ratio < 2.0)

let test_minime_vs_siesta () =
  (* the paper's Fig. 4 claim: the QP over six counters beats greedy
     three-ratio iteration on the three ratios themselves *)
  let kernels =
    [
      K.streaming ~label:"a" ~flops:2e6 ~bytes:1.6e7;
      K.compute_bound ~label:"b" ~flops:1e6 ~div_frac:0.05;
      K.streaming ~label:"c" ~flops:1e7 ~bytes:4e7;
    ]
  in
  let wins =
    List.filter
      (fun k ->
        let target = target_of k in
        let siesta = Proxy_search.search ~platform target in
        let minime = Minime.search ~platform ~target in
        Minime.ratio_error ~actual:siesta.Proxy_search.predicted ~reference:target
        <= minime.Minime.ratio_error +. 0.01)
      kernels
  in
  Alcotest.(check int) "siesta at least ties on every kernel" (List.length kernels)
    (List.length wins)

let test_minime_ratio_error_metric () =
  let c = target_of (K.compute_bound ~label:"k" ~flops:1e5 ~div_frac:0.0) in
  Alcotest.(check (float 1e-9)) "identical = 0" 0.0 (Minime.ratio_error ~actual:c ~reference:c)

(* ------------------------------------------------------------------ *)
(* Shared tracing helper *)

let ring ctx =
  let r = E.rank ctx and n = E.size ctx in
  for _ = 1 to 4 do
    E.compute ctx (K.streaming ~label:"k" ~flops:2e6 ~bytes:1.6e7);
    let rq = E.irecv ctx ~src:((r + n - 1) mod n) ~tag:1 ~dt:D.Double ~count:300 in
    E.send ctx ~dest:((r + 1) mod n) ~tag:1 ~dt:D.Double ~count:300;
    E.wait ctx rq;
    E.allreduce ctx (E.comm_world ctx) ~dt:D.Double ~count:1 ~op:Siesta_mpi.Op.Sum
  done

let traced ?(nranks = 8) program =
  let recorder = Recorder.create ~nranks () in
  let original = E.run ~platform ~impl ~nranks program in
  ignore (E.run ~platform ~impl ~nranks ~hook:(Recorder.hook recorder) program);
  (original, recorder)

(* ------------------------------------------------------------------ *)
(* Pilgrim *)

let test_pilgrim_drops_computation () =
  let original, recorder = traced ring in
  let merged = Siesta_merge.Pipeline.merge_recorder recorder in
  let res = E.run ~platform ~impl ~nranks:8 (Pilgrim.program merged) in
  (* all computation gone: the replay must be much faster than the original *)
  Alcotest.(check bool) "no computation time" true (res.E.elapsed < 0.2 *. original.E.elapsed);
  Alcotest.(check (float 0.0)) "no instructions retired" 0.0
    res.E.per_rank_counters.(0).Counters.ins

let test_pilgrim_keeps_communication () =
  let _, recorder = traced ring in
  let merged = Siesta_merge.Pipeline.merge_recorder recorder in
  let recorder2 = Recorder.create ~nranks:8 () in
  ignore (E.run ~platform ~impl ~nranks:8 ~hook:(Recorder.hook recorder2) (Pilgrim.program merged));
  let comm_count r =
    Array.length
      (Array.of_list
         (List.filter
            (fun e -> not (Event.is_compute e))
            (Array.to_list (Recorder.events r 0))))
  in
  Alcotest.(check int) "same communication calls" (comm_count recorder) (comm_count recorder2)

(* ------------------------------------------------------------------ *)
(* ScalaBench *)

let streams_of recorder nranks = Array.init nranks (Recorder.events recorder)

let test_scalabench_known_failures () =
  List.iter
    (fun (w, n, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s@%d" w n)
        expect
        (Scalabench.known_failure ~workload:w ~nranks:n))
    [
      ("SP", 256, true);
      ("SP", 529, true);
      ("SP", 64, false);
      ("sod", 64, true);
      ("Sedov", 128, true);
      ("StirTurb", 512, true);
      ("BT", 529, false);
      ("CG", 256, false);
    ]

let test_scalabench_crashes_on_failure_list () =
  let _, recorder = traced ring in
  Alcotest.(check bool) "raises Unsupported" true
    (match
       Scalabench.synthesize ~platform ~workload:"Sod" ~nranks:8
         ~streams:(streams_of recorder 8)
         ~compute_table:(Recorder.compute_table recorder)
     with
    | exception Scalabench.Unsupported _ -> true
    | _ -> false)

let test_scalabench_crashes_on_structural_diversity () =
  (* every rank gets a structurally distinct stream: the RSD merge fails *)
  let nranks = 20 in
  let streams =
    Array.init nranks (fun r ->
        Array.init (3 + r) (fun i ->
            if i mod 2 = 0 then Event.Barrier { comm = 0 }
            else Event.Send { Event.rel_peer = 1; tag = 0; dt = D.Int; count = 1; comm = 0 }))
  in
  let ct = Siesta_trace.Compute_table.create ~threshold:0.05 in
  Alcotest.(check bool) "raises Unsupported" true
    (match
       Scalabench.synthesize ~platform ~workload:"X" ~nranks ~streams ~compute_table:ct
     with
    | exception Scalabench.Unsupported _ -> true
    | _ -> false)

let test_scalabench_replay_runs () =
  let original, recorder = traced ring in
  let sb =
    Scalabench.synthesize ~platform ~workload:"ring" ~nranks:8
      ~streams:(streams_of recorder 8)
      ~compute_table:(Recorder.compute_table recorder)
  in
  let res = E.run ~platform ~impl ~nranks:8 (Scalabench.program sb) in
  (* within a factor of two, but not exact: quantized sleeps and sizes *)
  let ratio = res.E.elapsed /. original.E.elapsed in
  Alcotest.(check bool) (Printf.sprintf "coarse time (ratio %.2f)" ratio) true
    (ratio > 0.5 && ratio < 2.0)

let test_scalabench_platform_blind () =
  (* the sleeps are recorded on A; replaying on B must NOT slow down the
     computation part — the defect Fig. 9 exposes *)
  let _, recorder = traced ring in
  let sb =
    Scalabench.synthesize ~platform ~workload:"ring" ~nranks:8
      ~streams:(streams_of recorder 8)
      ~compute_table:(Recorder.compute_table recorder)
  in
  let on_a = (E.run ~platform ~impl ~nranks:8 (Scalabench.program sb)).E.elapsed in
  let on_b =
    (E.run ~platform:Spec.platform_b ~impl ~nranks:8 (Scalabench.program sb)).E.elapsed
  in
  (* only the (small) communication part changes *)
  Alcotest.(check bool) "frozen across platforms" true (abs_float (on_b -. on_a) /. on_a < 0.2)

let test_scalabench_drops_waits_of_converted_isends () =
  let _, recorder = traced ring in
  let sb =
    Scalabench.synthesize ~platform ~workload:"ring" ~nranks:8
      ~streams:(streams_of recorder 8)
      ~compute_table:(Recorder.compute_table recorder)
  in
  (* replay must not raise (every remaining Wait has a live request) and
     the transformed stream contains no Isend *)
  ignore (E.run ~platform ~impl ~nranks:8 (Scalabench.program sb))

(* quantization units: ScalaTrace-style histogram bins *)
let test_scalabench_quantization_properties () =
  (* small counts unchanged; larger counts land on 1.5 * 2^k bin centres *)
  let q = Scalabench.quantize in
  Alcotest.(check int) "0" 0 (q 0);
  Alcotest.(check int) "1" 1 (q 1);
  Alcotest.(check int) "2" 2 (q 2);
  List.iter
    (fun c ->
      let b = q c in
      (* centre of [2^k, 2^(k+1)): within a factor of 1.5 of the input *)
      let ratio = float_of_int b /. float_of_int c in
      if ratio < 0.6 || ratio > 1.6 then Alcotest.failf "bin for %d is %d" c b;
      (* idempotent: a centre maps into its own bin *)
      Alcotest.(check int) (Printf.sprintf "idempotent %d" c) b (q b))
    [ 3; 7; 100; 1000; 4096; 100_000; 1_048_575 ]

let suite =
  [
    ("minime converges on its three ratios", `Quick, test_minime_converges);
    ("minime calibrates duration", `Quick, test_minime_scales_to_instruction_count);
    ("minime never beats the QP (Fig. 4)", `Quick, test_minime_vs_siesta);
    ("minime ratio-error metric", `Quick, test_minime_ratio_error_metric);
    ("pilgrim drops computation", `Quick, test_pilgrim_drops_computation);
    ("pilgrim keeps communication", `Quick, test_pilgrim_keeps_communication);
    ("scalabench known failure list", `Quick, test_scalabench_known_failures);
    ("scalabench crashes on the failure list", `Quick, test_scalabench_crashes_on_failure_list);
    ("scalabench crashes on structural diversity", `Quick, test_scalabench_crashes_on_structural_diversity);
    ("scalabench replay runs coarsely", `Quick, test_scalabench_replay_runs);
    ("scalabench sleeps are platform blind", `Quick, test_scalabench_platform_blind);
    ("scalabench isend conversion consistent", `Quick, test_scalabench_drops_waits_of_converted_isends);
    ("scalabench histogram quantization", `Quick, test_scalabench_quantization_properties);
  ]
