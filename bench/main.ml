(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the ablations and Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table3 fig6  # selected experiments
     dune exec bench/main.exe -- --quick all  # reduced process counts
     dune exec bench/main.exe -- --quick --strict obs-overhead pipeline-scale
                                              # regression gate (make bench-check) *)

let experiments =
  [
    ("table2", Exp_table2.run);
    ("table3", Exp_table3.run);
    ("fig4", Exp_fig45.run);
    ("fig5", Exp_fig45.run);
    ("fig6", Exp_fig6.run);
    ("fig7", Exp_fig7.run);
    ("fig8", Exp_fig8.run);
    ("fig9", Exp_fig9.run);
    ("ablate", Exp_ablate.run);
    ("io", Exp_io.run);
    ("extrapolate", Exp_extrapolate.run);
    ("scaling", Exp_scaling.run);
    ("pipeline-scale", Exp_pipeline_scale.run);
    ("sweep-warm", Exp_sweep.run);
    ("obs-overhead", Exp_obs_overhead.run);
    ("bechamel", Exp_bechamel.run);
  ]

let default_order =
  [ "table2"; "table3"; "fig4"; "fig6"; "fig7"; "fig8"; "fig9"; "ablate"; "io"; "extrapolate"; "scaling"; "pipeline-scale"; "sweep-warm"; "obs-overhead"; "bechamel" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        match a with
        | "--quick" ->
            Exp_common.quick := true;
            false
        | "--strict" ->
            Exp_common.strict := true;
            false
        | _ -> true)
      args
  in
  let selected = match args with [] | [ "all" ] -> default_order | l -> l in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    selected;
  Printf.printf "\n[bench] completed in %.1f s (cpu)\n" (Sys.time () -. t0)
