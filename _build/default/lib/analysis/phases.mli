(** Iterative-phase detection from the merged grammar.

    HPC programs are dominated by outer iteration loops (the premise of
    APPRIME-style phase modeling, which the paper cites).  After Sequitur
    compression those loops are visible for free: a main-rule entry with a
    large repetition count IS the iteration structure, and its rule's
    expansion length is the per-iteration event count.  This module
    surfaces that structure for humans. *)

type phase = {
  iterations : int;  (** repetition count of the main-rule entry *)
  events_per_iteration : int;  (** expanded terminal events per repeat *)
  ranks : Siesta_merge.Rank_list.t;  (** who executes it *)
  leading_event : string;  (** name of the first event in the body *)
}

val detect : ?min_iterations:int -> Siesta_merge.Merged.t -> phase list
(** Main-rule entries repeated at least [min_iterations] times (default
    4), across all rank clusters, largest first. *)

val render : Siesta_merge.Merged.t -> string
(** Human-readable phase summary. *)
