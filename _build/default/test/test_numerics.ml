(* Tests for siesta_numerics: matrices, least squares, NNLS, regression. *)

open Siesta_numerics
module Rng = Siesta_util.Rng

let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_basics () =
  let m = Matrix.create ~rows:2 ~cols:3 in
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 3 (Matrix.cols m);
  check_float "zero init" 0.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 5.0;
  check_float "set/get" 5.0 (Matrix.get m 1 2)

let test_matrix_of_arrays () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "m00" 1.0 (Matrix.get m 0 0);
  check_float "m11" 4.0 (Matrix.get m 1 1);
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged") (fun () ->
      ignore (Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matrix_transpose () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Matrix.transpose m in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  check_float "t21" 6.0 (Matrix.get t 2 1);
  check_float "t01" 4.0 (Matrix.get t 0 1)

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_mul_identity () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Matrix.identity 2 in
  let c = Matrix.mul a i in
  for r = 0 to 1 do
    for k = 0 to 1 do
      check_float "a*I = a" (Matrix.get a r k) (Matrix.get c r k)
    done
  done

let test_matrix_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Matrix.mul_vec: dimension mismatch")
    (fun () -> ignore (Matrix.mul_vec a [| 1.0 |]))

let test_matrix_row_col () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "row" true (Matrix.row a 1 = [| 3.0; 4.0 |]);
  Alcotest.(check bool) "col" true (Matrix.col a 1 = [| 2.0; 4.0 |]);
  let b = Matrix.copy a in
  Matrix.scale_row b 0 2.0;
  check_float "scaled" 2.0 (Matrix.get b 0 0);
  check_float "original untouched" 1.0 (Matrix.get a 0 0)

(* ------------------------------------------------------------------ *)
(* Lsq *)

let test_lsq_exact_square () =
  let a = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let x = Lsq.solve a [| 6.0; 8.0 |] in
  check_float "x0" 3.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lsq_overdetermined () =
  (* fit y = 2x through (1,2) (2,4) (3,6.3): least squares slope *)
  let a = Matrix.of_arrays [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] in
  let x = Lsq.solve a [| 2.0; 4.0; 6.3 |] in
  (* analytic: (1*2 + 2*4 + 3*6.3) / (1+4+9) = 28.9/14 *)
  Alcotest.(check (float 1e-6)) "slope" (28.9 /. 14.0) x.(0)

let test_lsq_residual_optimality () =
  (* perturbing the solution must not reduce the residual *)
  let rng = Rng.create 23 in
  for _ = 1 to 50 do
    let a =
      Matrix.of_arrays
        (Array.init 5 (fun _ -> Array.init 3 (fun _ -> Rng.float rng 10.0)))
    in
    let b = Array.init 5 (fun _ -> Rng.float rng 10.0) in
    let x = Lsq.solve a b in
    let base = Lsq.residual_norm2 a x b in
    for j = 0 to 2 do
      let x' = Array.copy x in
      x'.(j) <- x'.(j) +. 0.01;
      if Lsq.residual_norm2 a x' b < base -. 1e-9 then
        Alcotest.failf "perturbation improved the residual (%f < %f)" (Lsq.residual_norm2 a x' b)
          base
    done
  done

let test_lsq_singular_handled () =
  (* duplicate columns: Gram matrix singular; the ridge must rescue it *)
  let a = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] in
  let b = [| 3.0; 6.0 |] in
  let x = Lsq.solve a b in
  let r = Lsq.residual_norm2 a x b in
  Alcotest.(check bool) "residual near zero" true (r < 1e-6)

(* ------------------------------------------------------------------ *)
(* Nnls *)

let test_nnls_nonnegative_system () =
  (* A x = b with x >= 0 attainable: NNLS must find it *)
  let a = Matrix.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let { Nnls.x; residual; _ } = Nnls.solve a [| 2.0; 3.0 |] in
  check_float "x0" 2.0 x.(0);
  check_float "x1" 3.0 x.(1);
  Alcotest.(check bool) "residual zero" true (residual < 1e-12)

let test_nnls_clamps_negative () =
  (* unconstrained solution is negative in x1: NNLS must clamp to zero *)
  let a = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |] in
  (* b = (0, 1): unconstrained x = (-1, 1) *)
  let { Nnls.x; _ } = Nnls.solve a [| 0.0; 1.0 |] in
  Alcotest.(check bool) "x0 clamped" true (x.(0) >= 0.0);
  Alcotest.(check bool) "x1 nonneg" true (x.(1) >= 0.0)

let test_nnls_zero_rhs () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let { Nnls.x; residual; _ } = Nnls.solve a [| 0.0; 0.0 |] in
  Alcotest.(check bool) "x = 0" true (Array.for_all (fun v -> v = 0.0) x);
  check_float "residual" 0.0 residual

let test_nnls_properties_random () =
  let rng = Rng.create 31 in
  for _ = 1 to 200 do
    let rows = 2 + Rng.int rng 5 and cols = 1 + Rng.int rng 6 in
    let a =
      Matrix.of_arrays
        (Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.float rng 5.0)))
    in
    let b = Array.init rows (fun _ -> Rng.float rng 5.0 -. 1.0) in
    let { Nnls.x; residual; _ } = Nnls.solve a b in
    (* 1. feasibility *)
    Array.iter (fun v -> if v < 0.0 then Alcotest.failf "negative component %f" v) x;
    (* 2. no worse than the zero vector *)
    let zero_res = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 b in
    if residual > zero_res +. 1e-9 then
      Alcotest.failf "worse than zero vector: %f > %f" residual zero_res;
    (* 3. approximate KKT: no active coordinate wants to grow *)
    let viol = Nnls.kkt_violation a b x in
    let scale = 1.0 +. abs_float zero_res in
    if viol > 1e-5 *. scale then Alcotest.failf "KKT violation %g" viol
  done

let test_nnls_tiny_scale () =
  (* regression test: weighted proxy-search systems have entries ~1e-10;
     an absolute tolerance used to stop the solver before it started *)
  let k = 1e-10 in
  let a = Matrix.of_arrays [| [| 2.0 *. k; 0.0 |]; [| 0.0; 4.0 *. k |] |] in
  let { Nnls.x; _ } = Nnls.solve a [| 6.0 *. k; 8.0 *. k |] in
  Alcotest.(check (float 1e-3)) "x0" 3.0 x.(0);
  Alcotest.(check (float 1e-3)) "x1" 2.0 x.(1)

let test_nnls_dimension_mismatch () =
  let a = Matrix.of_arrays [| [| 1.0 |] |] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Nnls.solve: dimension mismatch")
    (fun () -> ignore (Nnls.solve a [| 1.0; 2.0 |]))

(* ------------------------------------------------------------------ *)
(* Linreg *)

let test_linreg_exact () =
  let t = Linreg.fit ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 1.0; 3.0; 5.0 |] in
  check_float "slope" 2.0 t.Linreg.slope;
  check_float "intercept" 1.0 t.Linreg.intercept;
  check_float "r2 perfect" 1.0 (Linreg.r2 t ~xs:[| 0.0; 1.0; 2.0 |] ~ys:[| 1.0; 3.0; 5.0 |])

let test_linreg_degenerate_x () =
  let t = Linreg.fit ~xs:[| 2.0; 2.0; 2.0 |] ~ys:[| 1.0; 2.0; 3.0 |] in
  check_float "slope zero" 0.0 t.Linreg.slope;
  check_float "intercept mean" 2.0 t.Linreg.intercept

let test_linreg_predict () =
  let t = { Linreg.slope = 3.0; intercept = -1.0 } in
  check_float "predict" 5.0 (Linreg.predict t 2.0)

let test_linreg_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Linreg.fit: bad input") (fun () ->
      ignore (Linreg.fit ~xs:[||] ~ys:[||]))

let suite =
  [
    ("matrix create/get/set", `Quick, test_matrix_basics);
    ("matrix of_arrays", `Quick, test_matrix_of_arrays);
    ("matrix transpose", `Quick, test_matrix_transpose);
    ("matrix multiply", `Quick, test_matrix_mul);
    ("matrix multiply identity", `Quick, test_matrix_mul_identity);
    ("matrix multiply vector", `Quick, test_matrix_mul_vec);
    ("matrix row/col/scale/copy", `Quick, test_matrix_row_col);
    ("lsq exact square system", `Quick, test_lsq_exact_square);
    ("lsq overdetermined fit", `Quick, test_lsq_overdetermined);
    ("lsq residual is a local optimum", `Quick, test_lsq_residual_optimality);
    ("lsq singular system handled", `Quick, test_lsq_singular_handled);
    ("nnls attains feasible system", `Quick, test_nnls_nonnegative_system);
    ("nnls clamps negative coordinates", `Quick, test_nnls_clamps_negative);
    ("nnls zero rhs", `Quick, test_nnls_zero_rhs);
    ("nnls feasibility/KKT on random systems", `Quick, test_nnls_properties_random);
    ("nnls works at tiny magnitudes", `Quick, test_nnls_tiny_scale);
    ("nnls dimension mismatch", `Quick, test_nnls_dimension_mismatch);
    ("linreg exact line", `Quick, test_linreg_exact);
    ("linreg degenerate x", `Quick, test_linreg_degenerate_x);
    ("linreg predict", `Quick, test_linreg_predict);
    ("linreg rejects empty input", `Quick, test_linreg_rejects_empty);
  ]
