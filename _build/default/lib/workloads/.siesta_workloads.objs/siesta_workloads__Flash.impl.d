lib/workloads/flash.ml: Common List Siesta_mpi Siesta_perf
