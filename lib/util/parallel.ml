(* Domain pool: Domain.spawn workers around a chunked work queue guarded
   by a Mutex/Condition pair.  No dependencies beyond the stdlib.

   Lifecycle: [create] spawns the workers, which block on [work] until a
   job is posted or [stop] is raised; [run] posts a job, participates in
   chunk execution, then blocks on [finished] until the last chunk
   completes; [shutdown] raises [stop] and joins.  One job at a time —
   the pipeline's stages are sequential phases, each internally
   parallel. *)

type job = {
  body : int -> unit;
  chunks : int;
  mutable next : int;  (* next unclaimed chunk *)
  mutable live : int;  (* chunks not yet completed *)
  mutable failed : exn option;
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (* workers: a job was posted / shutdown *)
  finished : Condition.t;  (* submitter: the job completed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  total : int;  (* workers + the participating caller *)
}

let num_domains () =
  let recommended () = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "SIESTA_NUM_DOMAINS" with
  | None -> recommended ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> recommended ())

(* Claim-and-execute loop.  Called (and returns) with [pool.lock] held. *)
let claim_chunks pool j =
  while j.next < j.chunks do
    let i = j.next in
    j.next <- i + 1;
    Mutex.unlock pool.lock;
    let error = (try j.body i; None with e -> Some e) in
    Mutex.lock pool.lock;
    (match error with
    | None -> ()
    | Some e ->
        if j.failed = None then j.failed <- Some e;
        (* abandon unclaimed chunks so the job can terminate *)
        let unclaimed = j.chunks - j.next in
        j.next <- j.chunks;
        j.live <- j.live - unclaimed);
    j.live <- j.live - 1;
    if j.live = 0 then begin
      pool.job <- None;
      Condition.broadcast pool.finished
    end
  done

let worker pool () =
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.lock
    else
      match pool.job with
      | Some j when j.next < j.chunks ->
          claim_chunks pool j;
          loop ()
      | Some _ | None ->
          Condition.wait pool.work pool.lock;
          loop ()
  in
  loop ()

let create ?domains () =
  let total = max 1 (match domains with Some d -> d | None -> num_domains ()) in
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stop = false;
      workers = [];
      total;
    }
  in
  pool.workers <- List.init (total - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = pool.total

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run pool ~chunks body =
  if chunks > 0 then
    if pool.workers = [] then
      (* 1-domain pool: no queue traffic at all *)
      for i = 0 to chunks - 1 do
        body i
      done
    else begin
      let j = { body; chunks; next = 0; live = chunks; failed = None } in
      Mutex.lock pool.lock;
      if pool.job <> None then begin
        Mutex.unlock pool.lock;
        invalid_arg "Parallel.run: pool already has a job in flight"
      end;
      pool.job <- Some j;
      Condition.broadcast pool.work;
      (* the caller participates *)
      claim_chunks pool j;
      while j.live > 0 do
        Condition.wait pool.finished pool.lock
      done;
      Mutex.unlock pool.lock;
      match j.failed with Some e -> raise e | None -> ()
    end

let map_with_pool pool ?(min_chunk = 1) f a =
  let n = Array.length a in
  let out = Array.make n None in
  (* ~8 chunks per domain: coarse enough to amortize queue traffic, fine
     enough to balance uneven per-rank costs *)
  let target = 8 * size pool in
  let chunk = max (max 1 min_chunk) ((n + target - 1) / target) in
  let chunks = (n + chunk - 1) / chunk in
  run pool ~chunks (fun c ->
      let lo = c * chunk and hi = min n ((c + 1) * chunk) in
      for i = lo to hi - 1 do
        out.(i) <- Some (f i a.(i))
      done);
  Array.map (function Some v -> v | None -> assert false) out

let map ?pool ?domains ?min_chunk f a =
  let n = Array.length a in
  match pool with
  | Some p when size p > 1 && n > 1 -> map_with_pool p ?min_chunk f a
  | Some _ -> Array.mapi f a
  | None ->
      let d = max 1 (match domains with Some d -> d | None -> num_domains ()) in
      if d <= 1 || n <= 1 then Array.mapi f a
      else with_pool ~domains:(min d n) (fun p -> map_with_pool p ?min_chunk f a)
