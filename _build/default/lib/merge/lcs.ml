let cell_budget = 16_000_000

(* LCS length with O(min(n,m)) memory. *)
let length ~eq a b =
  let a, b = if Array.length a >= Array.length b then (a, b) else (b, a) in
  let n = Array.length a and m = Array.length b in
  if m = 0 then 0
  else begin
    let prev = Array.make (m + 1) 0 in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      for j = 1 to m do
        cur.(j) <-
          (if eq a.(i - 1) b.(j - 1) then prev.(j - 1) + 1 else max prev.(j) cur.(j - 1))
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let pairs ~eq a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 || n * m > cell_budget then []
  else begin
    (* full DP table for backtracking *)
    let dp = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = 1 to n do
      for j = 1 to m do
        dp.(i).(j) <-
          (if eq a.(i - 1) b.(j - 1) then dp.(i - 1).(j - 1) + 1
           else max dp.(i - 1).(j) dp.(i).(j - 1))
      done
    done;
    let rec back i j acc =
      if i = 0 || j = 0 then acc
      else if eq a.(i - 1) b.(j - 1) && dp.(i).(j) = dp.(i - 1).(j - 1) + 1 then
        back (i - 1) (j - 1) ((i - 1, j - 1) :: acc)
      else if dp.(i - 1).(j) >= dp.(i).(j - 1) then back (i - 1) j acc
      else back i (j - 1) acc
    in
    back n m []
  end

let indel_distance ~eq a b =
  Array.length a + Array.length b - (2 * length ~eq a b)

let normalized_distance ~eq a b =
  let total = Array.length a + Array.length b in
  if total = 0 then 0.0 else float_of_int (indel_distance ~eq a b) /. float_of_int total
