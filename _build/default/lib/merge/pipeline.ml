module Grammar = Siesta_grammar.Grammar
module Sequitur = Siesta_grammar.Sequitur
module Recorder = Siesta_trace.Recorder

type config = { rle : bool; cluster_threshold : float }

let default_config = { rle = true; cluster_threshold = 0.35 }

(* ------------------------------------------------------------------ *)
(* Non-terminal merging (Section 2.6.2, first half)                     *)

type nt_merge = {
  global_rules : Grammar.rule array;
  (* per rank: local rule id -> global rule id *)
  rule_maps : int array array;
}

let body_key body =
  String.concat " "
    (List.map
       (fun { Grammar.sym; reps } ->
         match sym with
         | Grammar.T v -> Printf.sprintf "T%d^%d" v reps
         | Grammar.N i -> Printf.sprintf "N%d^%d" i reps)
       body)

let merge_nonterminals (grammars : Grammar.t array) =
  let table : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let bodies_rev = ref [] in
  let count = ref 0 in
  let depths = Array.map Grammar.depth grammars in
  let max_depth = Array.fold_left (fun acc d -> Array.fold_left max acc d) 0 depths in
  let rule_maps = Array.map (fun g -> Array.make (Array.length g.Grammar.rules) (-1)) grammars in
  let remap_body rank body =
    List.map
      (fun ({ Grammar.sym; _ } as e) ->
        match sym with
        | Grammar.T _ -> e
        | Grammar.N local ->
            let g = rule_maps.(rank).(local) in
            assert (g >= 0);
            { e with Grammar.sym = Grammar.N g })
      body
  in
  for d = 1 to max_depth do
    Array.iteri
      (fun rank g ->
        Array.iteri
          (fun local body ->
            if depths.(rank).(local) = d then begin
              let body' = remap_body rank body in
              let key = body_key body' in
              match Hashtbl.find_opt table key with
              | Some gid -> rule_maps.(rank).(local) <- gid
              | None ->
                  let gid = !count in
                  incr count;
                  Hashtbl.replace table key gid;
                  bodies_rev := body' :: !bodies_rev;
                  rule_maps.(rank).(local) <- gid
            end)
          g.Grammar.rules)
      grammars
  done;
  { global_rules = Array.of_list (List.rev !bodies_rev); rule_maps }

(* ------------------------------------------------------------------ *)
(* Main-rule merging (Section 2.6.2, second half)                       *)

(* A main-rule position before rank attribution. *)
type pos = { p_sym : Grammar.symbol; p_reps : int }

let pos_eq a b = a.p_sym = b.p_sym && a.p_reps = b.p_reps

let positions_of_main rule_map main =
  Array.of_list
    (List.map
       (fun { Grammar.sym; reps } ->
         let sym =
           match sym with
           | Grammar.T _ -> sym
           | Grammar.N local -> Grammar.N rule_map.(local)
         in
         { p_sym = sym; p_reps = reps })
       main)

let mentry_pos (e : Merged.mentry) = { p_sym = e.Merged.sym; p_reps = e.Merged.reps }

(* Merge a variant (with its rank set) into an already-merged entry list:
   LCS positions get the union of rank lists; the rest interleaves in
   original order (a's gap before b's gap between anchors). *)
let lcs_merge (merged : Merged.mentry list) (variant : pos array) (vranks : Rank_list.t) :
    Merged.mentry list =
  let a = Array.of_list merged in
  let a_pos = Array.map mentry_pos a in
  let matches = Lcs.pairs ~eq:pos_eq a_pos variant in
  let out = ref [] in
  let emit_a i = out := a.(i) :: !out in
  let emit_b j =
    out := { Merged.sym = variant.(j).p_sym; reps = variant.(j).p_reps; ranks = vranks } :: !out
  in
  let emit_match i =
    out := { a.(i) with Merged.ranks = Rank_list.union a.(i).Merged.ranks vranks } :: !out
  in
  let ai = ref 0 and bj = ref 0 in
  List.iter
    (fun (mi, mj) ->
      while !ai < mi do
        emit_a !ai;
        incr ai
      done;
      while !bj < mj do
        emit_b !bj;
        incr bj
      done;
      emit_match mi;
      ai := mi + 1;
      bj := mj + 1)
    matches;
  while !ai < Array.length a do
    emit_a !ai;
    incr ai
  done;
  while !bj < Array.length variant do
    emit_b !bj;
    incr bj
  done;
  List.rev !out

type cluster = {
  mutable representative : pos array;  (* first variant seen *)
  mutable entries : Merged.mentry list;
  mutable ranks : Rank_list.t;
}

let merge_mains ~threshold (mains : pos array array) =
  (* Group exactly-equal mains first: in SPMD programs the overwhelming
     majority of ranks share one main verbatim, so the LCS only ever runs
     on the handful of distinct variants. *)
  let exact : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let key_of_positions ps =
    String.concat " "
      (Array.to_list
         (Array.map
            (fun p ->
              match p.p_sym with
              | Grammar.T v -> Printf.sprintf "T%d^%d" v p.p_reps
              | Grammar.N i -> Printf.sprintf "N%d^%d" i p.p_reps)
            ps))
  in
  Array.iteri
    (fun rank ps ->
      let key = key_of_positions ps in
      match Hashtbl.find_opt exact key with
      | Some l -> l := rank :: !l
      | None -> Hashtbl.add exact key (ref [ rank ]))
    mains;
  (* distinct variants, each with its rank set, in first-rank order *)
  let variants =
    Hashtbl.fold (fun _ ranks acc -> !ranks :: acc) exact []
    |> List.map (fun ranks ->
           let ranks = List.sort compare ranks in
           (mains.(List.hd ranks), Rank_list.of_list ranks))
    |> List.sort (fun (_, r1) (_, r2) -> compare (Rank_list.to_list r1) (Rank_list.to_list r2))
  in
  let clusters : cluster list ref = ref [] in
  List.iter
    (fun (ps, ranks) ->
      let close c = Lcs.normalized_distance ~eq:pos_eq c.representative ps <= threshold in
      match List.find_opt close !clusters with
      | Some c ->
          c.entries <- lcs_merge c.entries ps ranks;
          c.ranks <- Rank_list.union c.ranks ranks
      | None ->
          let entries =
            Array.to_list
              (Array.map (fun p -> { Merged.sym = p.p_sym; reps = p.p_reps; ranks }) ps)
          in
          clusters := !clusters @ [ { representative = ps; entries; ranks } ])
    variants;
  ( Array.of_list (List.map (fun c -> c.entries) !clusters),
    Array.of_list (List.map (fun c -> c.ranks) !clusters) )

(* ------------------------------------------------------------------ *)

let merge_streams ?(config = default_config) ~nranks streams =
  if Array.length streams <> nranks then invalid_arg "Pipeline.merge_streams: stream count";
  let table = Terminal_table.build streams in
  let grammars =
    Array.map (fun seq -> Sequitur.of_seq ~rle:config.rle seq) (Terminal_table.sequences table)
  in
  let { global_rules; rule_maps } = merge_nonterminals grammars in
  let mains =
    Array.mapi (fun r g -> positions_of_main rule_maps.(r) g.Grammar.main) grammars
  in
  let mains, main_ranks = merge_mains ~threshold:config.cluster_threshold mains in
  {
    Merged.nranks;
    terminals = Terminal_table.terminals table;
    rules = global_rules;
    mains;
    main_ranks;
  }

let merge_recorder ?config recorder =
  let nranks = Recorder.nranks recorder in
  let streams = Array.init nranks (fun r -> Recorder.events recorder r) in
  merge_streams ?config ~nranks streams
