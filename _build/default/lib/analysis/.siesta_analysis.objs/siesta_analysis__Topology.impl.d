lib/analysis/topology.ml: Comm_matrix Fun List Printf
