lib/synth/proxy_search.mli: Siesta_perf Siesta_platform
