(* Cross-platform proxy portability (the scenario of the paper's Figs. 8-9).

     dune exec examples/cross_platform.exe

   A performance engineer wants to predict how MG behaves on a machine
   they do not have continuous access to.  They trace it once on their
   production cluster (platform A), generate a proxy, and run the proxy
   everywhere: because Siesta synthesizes real computation (not recorded
   sleeps), the proxy's time moves with the target machine. *)

module Pipeline = Siesta.Pipeline
module Evaluate = Siesta.Evaluate
module Engine = Siesta_mpi.Engine
module Spec = Siesta_platform.Spec
module Mpi_impl = Siesta_platform.Mpi_impl

let () =
  let spec = Pipeline.spec ~workload:"MG" ~nranks:16 () in
  Printf.printf "tracing MG@16 on platform A (openmpi)...\n";
  let traced = Pipeline.trace spec in
  let art = Pipeline.synthesize traced in
  Printf.printf "proxy generated (size_C = %s)\n\n"
    (Siesta_util.Bytes_fmt.to_string (Siesta_synth.Proxy_ir.size_c_bytes art.Pipeline.proxy));
  let rows =
    List.concat_map
      (fun platform ->
        List.map
          (fun impl ->
            let original = (Pipeline.run_original spec ~platform ~impl).Engine.elapsed in
            let proxy = (Pipeline.run_proxy art ~platform ~impl).Engine.elapsed in
            [
              platform.Spec.name;
              impl.Mpi_impl.name;
              Printf.sprintf "%.4f" original;
              Printf.sprintf "%.4f" proxy;
              Printf.sprintf "%.2f%%" (100.0 *. Evaluate.time_error ~estimated:proxy ~original);
            ])
          [ Mpi_impl.openmpi; Mpi_impl.mpich; Mpi_impl.mvapich ])
      [ Spec.platform_a; Spec.platform_b; Spec.platform_c ]
  in
  Siesta_util.Pretty_table.print
    ~header:[ "platform"; "impl"; "original(s)"; "proxy(s)"; "error" ]
    ~rows;
  print_endline "\nNote how the proxy tracks the 2-4x slowdown on the Xeon Phi (platform B)."
