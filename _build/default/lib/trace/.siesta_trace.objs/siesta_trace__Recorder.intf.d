lib/trace/recorder.mli: Compute_table Event Siesta_mpi
