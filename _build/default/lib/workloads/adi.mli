(** Shared ADI (alternating-direction implicit) skeleton for the NPB BT
    and SP pseudo-applications.

    Both codes run on a square process grid and alternate face exchanges
    with pipelined line solves: the x sweep pipelines along grid rows, the
    y sweep along columns (forward elimination downstream, back
    substitution upstream), and the z solve is rank-local under the 2-D
    decomposition.  The parameter record captures how BT (5x5 block
    boundaries, heavier solves) differs from SP (scalar pentadiagonal
    boundaries, more divides). *)

type params = {
  grid_n : int;  (** global grid points per dimension (408 for class D) *)
  flops_per_cell_rhs : float;
  flops_per_cell_solve : float;  (** one directional solve *)
  boundary_doubles_per_line : int;  (** pipeline message size per grid line *)
  face_vars : int;  (** variables exchanged in copy_faces *)
  div_frac : float;  (** divide fraction of the solve kernels *)
  timesteps : int;
  io_interval : int;
      (** 0 = no I/O; otherwise a collective solution dump to a shared
          file every [io_interval] steps, plus a read-back verification at
          the end — NPB BT-IO's "full MPI-IO" mode (our I/O extension) *)
}

val bt_params : timesteps:int -> params
val sp_params : timesteps:int -> params
val btio_params : timesteps:int -> params

val program : params -> nranks:int -> Siesta_mpi.Engine.ctx -> unit
(** @raise Invalid_argument if [nranks] is not a perfect square. *)
