module Merged = Siesta_merge.Merged
module Rank_list = Siesta_merge.Rank_list
module Event = Siesta_trace.Event
module Call = Siesta_mpi.Call
module Datatype = Siesta_mpi.Datatype
module Op = Siesta_mpi.Op
module Block = Siesta_blocks.Block
module Grammar = Siesta_grammar.Grammar

let c_datatype = function
  | Datatype.Byte -> "MPI_BYTE"
  | Datatype.Int -> "MPI_INT"
  | Datatype.Float -> "MPI_FLOAT"
  | Datatype.Double -> "MPI_DOUBLE"

let c_op = function
  | Op.Sum -> "MPI_SUM"
  | Op.Max -> "MPI_MAX"
  | Op.Min -> "MPI_MIN"
  | Op.Prod -> "MPI_PROD"

let peer rel = Printf.sprintf "PEER(%d)" rel

let src_expr rel = if rel = Call.any_source then "MPI_ANY_SOURCE" else peer rel
let tag_expr tag = if tag = Call.any_tag then "MPI_ANY_TAG" else string_of_int tag

(* ------------------------------------------------------------------ *)
(* Computation functions                                                *)

let emit_compute buf cid x err =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "/* computation event cluster %d; search error %.2f%%; x = [%s] */\n" cid (100.0 *. err)
    (String.concat ", " (Array.to_list (Array.map (fun v -> Printf.sprintf "%.0f" v) x)));
  p "static void compute_%d(void) {\n" cid;
  let sum19 = ref 0.0 in
  for j = 0 to 8 do
    sum19 := !sum19 +. x.(j)
  done;
  Array.iteri
    (fun j xj ->
      if xj > 0.0 && j <= 8 then begin
        let b = Block.all.(j) in
        p "  /* block%d: %s */\n" b.Block.id b.Block.description;
        p "  for (long r%d = 0; r%d < %.0fL; r%d++) {\n" j j xj j;
        String.split_on_char '\n' b.Block.c_source |> List.iter (fun line -> p "    %s\n" line);
        p "  }\n"
      end)
    x;
  if x.(9) > 0.0 then begin
    p "  /* block10: %s */\n" Block.all.(9).Block.description;
    p "  for (long r9 = 0; r9 < %.0fL; r9++);\n" x.(9)
  end;
  let rem = x.(10) -. !sum19 in
  if rem > 0.0 then begin
    p "  /* block11 remainder: loop overhead beyond blocks 1-9 */\n";
    p "  for (register long r10 = 0; r10 < %.0fL; r10++) { }\n" rem
  end;
  p "}\n\n"

(* ------------------------------------------------------------------ *)
(* Terminal functions                                                   *)

let emit_terminal buf gid (ev : Event.t) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let stmt body = p "static void t_%d(void) { %s }\n" gid body in
  match ev with
  | Event.Compute _ -> ()  (* dispatched to compute_<cid> at call sites *)
  | Event.Send { rel_peer; tag; dt; count; comm } ->
      stmt
        (Printf.sprintf "MPI_Send(sbuf, %d, %s, %s, %d, comms[%d]);" count (c_datatype dt)
           (peer rel_peer) tag comm)
  | Event.Recv { rel_peer; tag; dt; count; comm } ->
      stmt
        (Printf.sprintf "MPI_Recv(rbuf, %d, %s, %s, %s, comms[%d], MPI_STATUS_IGNORE);" count
           (c_datatype dt) (src_expr rel_peer) (tag_expr tag) comm)
  | Event.Isend ({ rel_peer; tag; dt; count; comm }, slot) ->
      stmt
        (Printf.sprintf "MPI_Isend(sbuf, %d, %s, %s, %d, comms[%d], &reqs[%d]);" count
           (c_datatype dt) (peer rel_peer) tag comm slot)
  | Event.Irecv ({ rel_peer; tag; dt; count; comm }, slot) ->
      stmt
        (Printf.sprintf "MPI_Irecv(rbuf, %d, %s, %s, %s, comms[%d], &reqs[%d]);" count
           (c_datatype dt) (src_expr rel_peer) (tag_expr tag) comm slot)
  | Event.Wait slot -> stmt (Printf.sprintf "MPI_Wait(&reqs[%d], MPI_STATUS_IGNORE);" slot)
  | Event.Waitall slots ->
      let sorted = List.sort compare slots in
      let n = List.length sorted in
      let contiguous =
        match sorted with
        | [] -> true
        | first :: _ ->
            List.for_all2 (fun s i -> s = first + i) sorted (List.init n (fun i -> i))
      in
      if contiguous && n > 0 then
        stmt
          (Printf.sprintf "MPI_Waitall(%d, &reqs[%d], MPI_STATUSES_IGNORE);" n
             (List.hd sorted))
      else begin
        p "static void t_%d(void) {\n" gid;
        List.iter (fun s -> p "  MPI_Wait(&reqs[%d], MPI_STATUS_IGNORE);\n" s) slots;
        p "}\n"
      end
  | Event.Sendrecv { send; recv } ->
      stmt
        (Printf.sprintf
           "MPI_Sendrecv(sbuf, %d, %s, %s, %d, rbuf, %d, %s, %s, %s, comms[%d], \
            MPI_STATUS_IGNORE);"
           send.count (c_datatype send.dt) (peer send.rel_peer) send.tag recv.count
           (c_datatype recv.dt) (src_expr recv.rel_peer) (tag_expr recv.tag) send.comm)
  | Event.Barrier { comm } -> stmt (Printf.sprintf "MPI_Barrier(comms[%d]);" comm)
  | Event.Bcast { comm; root; dt; count } ->
      stmt (Printf.sprintf "MPI_Bcast(sbuf, %d, %s, %d, comms[%d]);" count (c_datatype dt) root comm)
  | Event.Reduce { comm; root; dt; count; op } ->
      stmt
        (Printf.sprintf "MPI_Reduce(sbuf, rbuf, %d, %s, %s, %d, comms[%d]);" count
           (c_datatype dt) (c_op op) root comm)
  | Event.Allreduce { comm; dt; count; op } ->
      stmt
        (Printf.sprintf "MPI_Allreduce(sbuf, rbuf, %d, %s, %s, comms[%d]);" count
           (c_datatype dt) (c_op op) comm)
  | Event.Alltoall { comm; dt; count } ->
      stmt
        (Printf.sprintf "MPI_Alltoall(sbuf, %d, %s, rbuf, %d, %s, comms[%d]);" count
           (c_datatype dt) count (c_datatype dt) comm)
  | Event.Alltoallv { comm; dt; send_counts } ->
      let ints a = String.concat ", " (Array.to_list (Array.map string_of_int a)) in
      let displs =
        let d = Array.make (Array.length send_counts) 0 in
        for i = 1 to Array.length send_counts - 1 do
          d.(i) <- d.(i - 1) + send_counts.(i - 1)
        done;
        d
      in
      p "static const int t_%d_counts[] = { %s };\n" gid (ints send_counts);
      p "static const int t_%d_displs[] = { %s };\n" gid (ints displs);
      p
        "static void t_%d(void) { MPI_Alltoallv(sbuf, (int *)t_%d_counts, (int \
         *)t_%d_displs, %s, rbuf, (int *)t_%d_counts, (int *)t_%d_displs, %s, comms[%d]); \
         }\n"
        gid gid gid (c_datatype dt) gid gid (c_datatype dt) comm
  | Event.Allgather { comm; dt; count } ->
      stmt
        (Printf.sprintf "MPI_Allgather(sbuf, %d, %s, rbuf, %d, %s, comms[%d]);" count
           (c_datatype dt) count (c_datatype dt) comm)
  | Event.Gather { comm; root; dt; count } ->
      stmt
        (Printf.sprintf "MPI_Gather(sbuf, %d, %s, rbuf, %d, %s, %d, comms[%d]);" count
           (c_datatype dt) count (c_datatype dt) root comm)
  | Event.Scatter { comm; root; dt; count } ->
      stmt
        (Printf.sprintf "MPI_Scatter(sbuf, %d, %s, rbuf, %d, %s, %d, comms[%d]);" count
           (c_datatype dt) count (c_datatype dt) root comm)
  | Event.Scan { comm; dt; count; op } ->
      stmt
        (Printf.sprintf "MPI_Scan(sbuf, rbuf, %d, %s, %s, comms[%d]);" count (c_datatype dt)
           (c_op op) comm)
  | Event.Exscan { comm; dt; count; op } ->
      stmt
        (Printf.sprintf "MPI_Exscan(sbuf, rbuf, %d, %s, %s, comms[%d]);" count (c_datatype dt)
           (c_op op) comm)
  | Event.Reduce_scatter { comm; dt; count; op } ->
      stmt
        (Printf.sprintf "MPI_Reduce_scatter_block(sbuf, rbuf, %d, %s, %s, comms[%d]);" count
           (c_datatype dt) (c_op op) comm)
  | Event.Ibarrier { comm; req } ->
      stmt (Printf.sprintf "MPI_Ibarrier(comms[%d], &reqs[%d]);" comm req)
  | Event.Ibcast { comm; root; dt; count; req } ->
      stmt
        (Printf.sprintf "MPI_Ibcast(sbuf, %d, %s, %d, comms[%d], &reqs[%d]);" count
           (c_datatype dt) root comm req)
  | Event.Iallreduce { comm; dt; count; op; req } ->
      stmt
        (Printf.sprintf "MPI_Iallreduce(sbuf, rbuf, %d, %s, %s, comms[%d], &reqs[%d]);" count
           (c_datatype dt) (c_op op) comm req)
  | Event.Comm_split { comm; color; key; newcomm } ->
      stmt (Printf.sprintf "MPI_Comm_split(comms[%d], %d, %d, &comms[%d]);" comm color key newcomm)
  | Event.Comm_dup { comm; newcomm } ->
      stmt (Printf.sprintf "MPI_Comm_dup(comms[%d], &comms[%d]);" comm newcomm)
  | Event.Comm_free { comm } -> stmt (Printf.sprintf "MPI_Comm_free(&comms[%d]);" comm)
  | Event.File_open { comm; file } ->
      stmt
        (Printf.sprintf
           "MPI_File_open(comms[%d], \"siesta_proxy_%d.dat\", MPI_MODE_CREATE |             MPI_MODE_RDWR, MPI_INFO_NULL, &files[%d]);"
           comm file file)
  | Event.File_close { file } -> stmt (Printf.sprintf "MPI_File_close(&files[%d]);" file)
  | Event.File_write_all { file; dt; count } ->
      stmt
        (Printf.sprintf
           "MPI_File_write_all(files[%d], sbuf, %d, %s, MPI_STATUS_IGNORE);" file count
           (c_datatype dt))
  | Event.File_read_all { file; dt; count } ->
      stmt
        (Printf.sprintf "MPI_File_read_all(files[%d], rbuf, %d, %s, MPI_STATUS_IGNORE);" file
           count (c_datatype dt))
  | Event.File_write_at { file; dt; count } ->
      stmt
        (Printf.sprintf
           "MPI_File_write_at(files[%d], (MPI_Offset)rank * %d, sbuf, %d, %s,             MPI_STATUS_IGNORE);"
           file
           (count * Datatype.size dt)
           count (c_datatype dt))
  | Event.File_read_at { file; dt; count } ->
      stmt
        (Printf.sprintf
           "MPI_File_read_at(files[%d], (MPI_Offset)rank * %d, rbuf, %d, %s,             MPI_STATUS_IGNORE);"
           file
           (count * Datatype.size dt)
           count (c_datatype dt))

(* ------------------------------------------------------------------ *)
(* Rank-list conditions                                                 *)

type explicit_sets = { mutable sets : (string * int list) list; mutable next : int }

let condition ~nranks ~explicits ranks =
  match Rank_list.shape ~nranks ranks with
  | Rank_list.All _ -> "1"
  | Rank_list.Range (lo, hi) ->
      if lo = hi then Printf.sprintf "rank == %d" lo
      else Printf.sprintf "rank >= %d && rank <= %d" lo hi
  | Rank_list.Strided (lo, hi, s) ->
      Printf.sprintf "rank >= %d && rank <= %d && (rank - %d) %% %d == 0" lo hi lo s
  | Rank_list.Explicit members ->
      let name = Printf.sprintf "rl_%d" explicits.next in
      explicits.next <- explicits.next + 1;
      explicits.sets <- (name, members) :: explicits.sets;
      Printf.sprintf "in_set(%s, %d)" name (List.length members)

(* ------------------------------------------------------------------ *)

let symbol_call terminals sym =
  match sym with
  | Grammar.T gid -> begin
      match terminals.(gid) with
      | Event.Compute cid -> Printf.sprintf "compute_%d();" cid
      | _ -> Printf.sprintf "t_%d();" gid
    end
  | Grammar.N rid -> Printf.sprintf "rule_%d();" rid

let emit_entry buf ~indent terminals (e : Grammar.entry) =
  let pad = String.make indent ' ' in
  let call = symbol_call terminals e.Grammar.sym in
  if e.Grammar.reps = 1 then Buffer.add_string buf (Printf.sprintf "%s%s\n" pad call)
  else
    Buffer.add_string buf
      (Printf.sprintf "%sfor (long k = 0; k < %dL; k++) { %s }\n" pad e.Grammar.reps call)

let generate (ir : Proxy_ir.t) =
  Siesta_obs.Span.with_ ~cat:"pipeline" "codegen" @@ fun () ->
  let merged = ir.Proxy_ir.merged in
  let terminals = merged.Merged.terminals in
  let nranks = merged.Merged.nranks in
  let buf = Buffer.create 16384 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let max_bytes =
    Array.fold_left
      (fun acc ev ->
        max acc
          (match ev with
          | Event.Send q | Event.Recv q | Event.Isend (q, _) | Event.Irecv (q, _) ->
              Datatype.bytes q.Event.dt ~count:q.Event.count
          | Event.Sendrecv { send; recv } ->
              max
                (Datatype.bytes send.Event.dt ~count:send.Event.count)
                (Datatype.bytes recv.Event.dt ~count:recv.Event.count)
          | Event.Alltoall { dt; count; _ }
          | Event.Allgather { dt; count; _ }
          | Event.Gather { dt; count; _ }
          | Event.Scatter { dt; count; _ }
          | Event.Bcast { dt; count; _ }
          | Event.Reduce { dt; count; _ }
          | Event.Allreduce { dt; count; _ }
          | Event.Scan { dt; count; _ }
          | Event.Exscan { dt; count; _ }
          | Event.Reduce_scatter { dt; count; _ } ->
              Datatype.bytes dt ~count * nranks
          | Event.Alltoallv { dt; send_counts; _ } ->
              Datatype.bytes dt ~count:(Array.fold_left ( + ) 0 send_counts)
          | Event.File_write_all { dt; count; _ }
          | Event.File_read_all { dt; count; _ }
          | Event.File_write_at { dt; count; _ }
          | Event.File_read_at { dt; count; _ } ->
              Datatype.bytes dt ~count
          | Event.Ibcast { dt; count; _ } | Event.Iallreduce { dt; count; _ } ->
              Datatype.bytes dt ~count * nranks
          | _ -> 0))
      64 terminals
  in
  p "/*\n";
  p " * Synthetic proxy application generated by Siesta.\n";
  p " *   generation platform : %s\n" ir.Proxy_ir.generated_on;
  p " *   scaling factor      : %.0f\n" (Shrink.factor ir.Proxy_ir.shrink);
  p " *   ranks               : %d (run with exactly this many processes)\n" nranks;
  p " *   terminals/rules     : %d / %d\n" (Array.length terminals)
    (Array.length merged.Merged.rules);
  p " * The program performs no meaningful computation; it reproduces the\n";
  p " * communication pattern of the traced program losslessly and mimics\n";
  p " * its computation performance counters.\n";
  p " */\n";
  p "#include <mpi.h>\n#include <stdio.h>\n#include <stdlib.h>\n\n";
  p "#define L1_CACHE_SIZE 32768\n#define CACHELINE 64\n";
  p "#define PEER(d) ((rank + (d)) %% size)\n\n";
  p "static int rank, size;\n";
  p "static MPI_Request reqs[%d];\n" (max 1 (Proxy_ir.max_request_slots ir));
  p "static MPI_Comm comms[%d];\n" (Proxy_ir.max_comm_slots ir);
  if Proxy_ir.max_file_slots ir > 0 then
    p "static MPI_File files[%d];\n" (Proxy_ir.max_file_slots ir);
  p "static char *sbuf, *rbuf;\n";
  p "static char a[4 * L1_CACHE_SIZE];\n";
  p "static long i0, i1, i2 = 3, i3 = 5, i4 = 7, i5 = 11, i6 = 13, j;\n";
  p "static double d1 = 1.0, d2 = 1.000001, d3 = 0.999999, d4 = 1.000002, d5 = 0.999998, d6 \
     = 1.000003;\n\n";
  p "static int in_set(const int *s, int n) {\n";
  p "  int lo = 0, hi = n - 1;\n";
  p "  while (lo <= hi) {\n";
  p "    int mid = (lo + hi) / 2;\n";
  p "    if (s[mid] == rank) return 1;\n";
  p "    if (s[mid] < rank) lo = mid + 1; else hi = mid - 1;\n";
  p "  }\n  return 0;\n}\n\n";
  (* computation clusters used anywhere *)
  let used_clusters = Hashtbl.create 16 in
  Array.iter
    (fun ev -> match ev with Event.Compute cid -> Hashtbl.replace used_clusters cid () | _ -> ())
    terminals;
  Hashtbl.fold (fun cid () acc -> cid :: acc) used_clusters []
  |> List.sort compare
  |> List.iter (fun cid ->
         emit_compute buf cid ir.Proxy_ir.combos.(cid) ir.Proxy_ir.combo_errors.(cid));
  (* terminals *)
  Array.iteri (fun gid ev -> emit_terminal buf gid ev) terminals;
  p "\n";
  (* rules: emit prototypes first (rules only reference lower ids, but be safe) *)
  Array.iteri (fun rid _ -> p "static void rule_%d(void);\n" rid) merged.Merged.rules;
  p "\n";
  Array.iteri
    (fun rid body ->
      p "static void rule_%d(void) {\n" rid;
      List.iter (fun e -> emit_entry buf ~indent:2 terminals e) body;
      p "}\n\n")
    merged.Merged.rules;
  (* main: build body first so explicit rank sets can be declared above it *)
  let explicits = { sets = []; next = 0 } in
  let main_buf = Buffer.create 4096 in
  let pm fmt = Printf.ksprintf (Buffer.add_string main_buf) fmt in
  Array.iteri
    (fun ci entries ->
      let cranks = merged.Merged.main_ranks.(ci) in
      pm "  /* main rule for rank cluster %d: %s */\n" ci
        (Format.asprintf "%a" Rank_list.pp cranks);
      let ccond = condition ~nranks ~explicits cranks in
      pm "  if (%s) {\n" ccond;
      (* group consecutive entries sharing a rank list under one branch *)
      let rec groups acc current current_ranks = function
        | [] -> List.rev (if current = [] then acc else (current_ranks, List.rev current) :: acc)
        | (e : Merged.mentry) :: rest ->
            if current <> [] && Rank_list.equal e.Merged.ranks current_ranks then
              groups acc (e :: current) current_ranks rest
            else begin
              let acc = if current = [] then acc else (current_ranks, List.rev current) :: acc in
              groups acc [ e ] e.Merged.ranks rest
            end
      in
      let gs = groups [] [] (Rank_list.of_list []) entries in
      List.iter
        (fun (ranks, es) ->
          let inner =
            if Rank_list.equal ranks cranks then "1" else condition ~nranks ~explicits ranks
          in
          if inner = "1" then
            List.iter
              (fun (e : Merged.mentry) ->
                emit_entry main_buf ~indent:4 terminals
                  { Grammar.sym = e.Merged.sym; reps = e.Merged.reps })
              es
          else begin
            pm "    if (%s) {\n" inner;
            List.iter
              (fun (e : Merged.mentry) ->
                emit_entry main_buf ~indent:6 terminals
                  { Grammar.sym = e.Merged.sym; reps = e.Merged.reps })
              es;
            pm "    }\n"
          end)
        gs;
      pm "  }\n")
    merged.Merged.mains;
  (* explicit rank sets *)
  List.iter
    (fun (name, members) ->
      p "static const int %s[] = { %s };\n" name
        (String.concat ", " (List.map string_of_int members)))
    (List.rev explicits.sets);
  p "\nint main(int argc, char **argv) {\n";
  p "  MPI_Init(&argc, &argv);\n";
  p "  MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n";
  p "  MPI_Comm_size(MPI_COMM_WORLD, &size);\n";
  p "  if (size != %d) {\n" nranks;
  p "    if (rank == 0) fprintf(stderr, \"this proxy reproduces a %d-rank execution\\n\");\n"
    nranks;
  p "    MPI_Abort(MPI_COMM_WORLD, 1);\n  }\n";
  p "  comms[0] = MPI_COMM_WORLD;\n";
  p "  sbuf = malloc(%d);\n  rbuf = malloc(%d);\n" max_bytes max_bytes;
  p "  srand(20240521);\n";
  p "  double t0 = MPI_Wtime();\n";
  Buffer.add_buffer buf main_buf;
  p "  double t1 = MPI_Wtime();\n";
  p "  if (rank == 0) printf(\"proxy elapsed: %%.6f s\\n\", t1 - t0);\n";
  p "  free(sbuf);\n  free(rbuf);\n";
  p "  MPI_Finalize();\n";
  p "  return 0;\n}\n";
  Buffer.contents buf

let write_file ir ~path =
  let code = generate ir in
  if Siesta_obs.Metrics.enabled () then begin
    Siesta_obs.Metrics.incr (Siesta_obs.Metrics.counter "codegen.files") 1;
    Siesta_obs.Metrics.incr (Siesta_obs.Metrics.counter "codegen.bytes") (String.length code)
  end;
  let oc = open_out path in
  output_string oc code;
  close_out oc

let makefile ir ~name =
  let nranks = ir.Proxy_ir.merged.Merged.nranks in
  String.concat "\n"
    [
      "MPICC ?= mpicc";
      "MPIRUN ?= mpirun";
      Printf.sprintf "NP ?= %d" nranks;
      "CFLAGS ?= -O2";
      "";
      Printf.sprintf "%s: %s.c" name name;
      Printf.sprintf "\t$(MPICC) $(CFLAGS) -o %s %s.c" name name;
      "";
      Printf.sprintf "run: %s" name;
      Printf.sprintf "\t$(MPIRUN) -np $(NP) ./%s" name;
      "";
      "clean:";
      Printf.sprintf "\trm -f %s siesta_proxy_*.dat" name;
      "";
      ".PHONY: run clean";
      "";
    ]

let write_bundle ir ~dir ~name =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file ir ~path:(Filename.concat dir (name ^ ".c"));
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  write (Filename.concat dir "Makefile") (makefile ir ~name);
  write
    (Filename.concat dir "README")
    (Printf.sprintf
       "Synthetic proxy application generated by Siesta.\n\n\
        Build:  make            (set MPICC for a non-default compiler)\n\
        Run:    make run        (exactly %d ranks; NP is preset)\n\n\
        The program reproduces the traced program's communication pattern\n\
        losslessly and mimics its computation performance counters; it\n\
        computes nothing meaningful.  Generated on platform %s with a\n\
        scaling factor of %.0f.\n"
       ir.Proxy_ir.merged.Merged.nranks ir.Proxy_ir.generated_on
       (Shrink.factor ir.Proxy_ir.shrink))
