type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Bad of int * string

let parse_exn_inner s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad (!pos, m)) in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "invalid \\u escape"
              | Some code ->
                  (* Decode BMP code points to UTF-8; surrogates are kept
                     as replacement chars — the emitters never produce
                     them. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end);
              pos := !pos + 4
          | c -> fail (Printf.sprintf "invalid escape \\%c" c));
          advance ();
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn_inner s with
  | v -> Ok v
  | exception Bad (off, m) -> Error (Printf.sprintf "JSON error at byte %d: %s" off m)

let parse_exn s = match parse s with Ok v -> v | Error m -> failwith m

(* ------------------------------------------------------------------ *)
(* Printer *)

(* Integers up to 2^53 print without an exponent (and parse back to the
   identical float); everything else gets the shortest decimal that
   round-trips exactly.  nan/inf have no JSON spelling and become null. *)
let number_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (number_repr f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ", ";
            go v)
          l;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function Arr l -> l | _ -> []
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None
