lib/mpi/op.mli:
