(** Compact, self-describing binary serialization for the pipeline's
    stage artifacts.

    Every persistent blob is a {e frame}:

    {v
    "SSB1"                       4-byte magic
    <schema>                     varint, = {!schema_version}
    <kind>                       length-prefixed string ("trace", ...)
    <payload-length>             varint
    <payload>                    kind-specific binary body
    <checksum>                   8-byte little-endian FNV-1a 64 over
                                 everything before it
    v}

    Integers are zigzag varints, floats are their IEEE-754 bits
    ([Int64.bits_of_float], little-endian) so round-trips are {e exact}
    — a proxy decoded from the store generates byte-identical C to the
    one that was encoded.  No [Marshal] anywhere on the persistent path:
    blobs survive compiler upgrades and are rejected loudly (not
    segfault-y) when damaged.

    All decoders raise {!Corrupt} on malformed, truncated or
    wrong-schema input. *)

exception Corrupt of string

val schema_version : int
(** Bumped whenever any payload layout changes; a mismatch makes
    {!unframe} raise {!Corrupt} (and a cache lookup miss). *)

val float_repr : float -> string
(** The exact bit pattern of a float as 16 hex chars — used wherever a
    float participates in a cache key ([0.1 +. 0.2] and [0.3] get
    different keys; [nan]s get a stable one). *)

(** {1 Framing} *)

val frame : kind:string -> string -> string
(** Wrap a payload in a checksummed, versioned frame. *)

val unframe : string -> string * string
(** [unframe blob] is [(kind, payload)].
    @raise Corrupt on bad magic, checksum mismatch, schema mismatch or
    truncation. *)

val kind_of : string -> string option
(** The frame's kind without verifying the checksum (cheap peek for
    [store ls]); [None] if the header is unreadable. *)

(** {1 Stage artifacts} *)

type trace_meta = {
  tm_original_elapsed : float;  (** uninstrumented run, simulated s *)
  tm_instrumented_elapsed : float;
  tm_original_calls : int;
  tm_instrumented_calls : int;
  tm_total_events : int;  (** encoded events across ranks *)
  tm_raw_bytes : int;  (** uncompressed trace volume (Table 3) *)
}
(** Run measurements that accompany a stored trace, so a cache hit can
    still report tracing overhead and raw size without re-running the
    engine (runs are deterministic per seed, so these are facts about
    the spec, not about the run that happened to produce the blob). *)

val meta_overhead : trace_meta -> float
(** [(instrumented - original) / original]; [0.] when original is 0. *)

val encode_trace : meta:trace_meta -> Siesta_trace.Trace_io.packed -> string
(** Framed; the distinct-event definition table is written once and the
    per-rank streams as chunks of varint codes, read straight out of the
    SoA buffers — encoding never materializes boxed events. *)

val decode_trace : string -> trace_meta * Siesta_trace.Trace_io.packed
(** Decodes chunk by chunk into fresh SoA buffers (codes validated
    against the definition table; truncated chunks raise {!Corrupt}). *)

val encode_grammars : Siesta_grammar.Grammar.t array -> string
(** The per-rank grammar set (one Sequitur grammar per rank). *)

val decode_grammars : string -> Siesta_grammar.Grammar.t array
val encode_merged : Siesta_merge.Merged.t -> string
val decode_merged : string -> Siesta_merge.Merged.t

val encode_proxy : Siesta_synth.Proxy_ir.t -> string
(** Self-contained: embeds the merged grammar alongside the block
    combinations, shrink plan and generation platform. *)

val decode_proxy : string -> Siesta_synth.Proxy_ir.t

val encode_run : string -> string
(** Frame a run-ledger record (kind ["run"]).  Unlike the stage
    artifacts the payload is a UTF-8 JSON document — the ledger
    versions its field layout inside the document — so the frame's job
    is the magic, store schema version and checksum, and [store verify]
    vets ledger records with the same machinery as everything else. *)

val decode_run : string -> string
(** The JSON payload of a ["run"] frame.
    @raise Corrupt on damage or a different kind. *)

val encode_text : string -> string
(** Frame a plain-text server artifact (kind ["text"]) — generated C,
    report markdown, verdict JSON, dashboard HTML.  Same framing as
    every other blob, so [store verify] needs no special case. *)

val decode_text : string -> string
(** The payload of a ["text"] frame.
    @raise Corrupt on damage or a different kind. *)

(** {1 Primitives (exposed for tests and key building)} *)

module Wire : sig
  type writer
  type reader

  val writer : unit -> writer
  val contents : writer -> string
  val reader : string -> reader

  val w_varint : writer -> int -> unit
  (** Zigzag varint; any OCaml int round-trips (negatives included). *)

  val r_varint : reader -> int
  val w_float : writer -> float -> unit

  val r_float : reader -> float
  (** Bit-exact, [nan]s and signed zeros included. *)

  val w_string : writer -> string -> unit
  val r_string : reader -> string

  val at_end : reader -> bool
  (** All input consumed — decoders check this to reject trailing
      garbage. *)
end
