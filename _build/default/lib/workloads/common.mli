(** Shared helpers for the workload skeletons. *)

val square_side : int -> int
(** [square_side p] is the integer square root of [p].
    @raise Invalid_argument if [p] is not a perfect square. *)

val log2_exact : int -> int
(** @raise Invalid_argument if the argument is not a power of two. *)

val grid3 : int -> int * int * int
(** Factor a process count into a near-cubic [nx * ny * nz] grid (largest
    factors first), as NPB MG's setup does. *)

val grid2 : int -> int * int
(** Factor into a near-square 2-D grid. *)

type coords2 = { px : int; py : int; nx : int; ny : int }

val coords2_of_rank : nranks:int -> rank:int -> coords2
(** Row-major placement on the {!grid2} of [nranks]. *)

val rank_of_coords2 : coords2 -> int
