lib/trace/event.ml: Array Format List Printf Siesta_mpi String
