lib/workloads/npb_cg.mli: Siesta_mpi
