(* Tests for the fidelity-sweep observatory (Siesta_sweep): factor
   schedule parsing, the factor-aware verdict, the schema-v2 ledger
   sweep record, the curve-regression dimensions, the sweep dashboard's
   embedded data block, and the end-to-end one-record-per-invocation
   contract of Sweep.run. *)

module Json = Siesta_obs.Json
module Metrics = Siesta_obs.Metrics
module Counters = Siesta_perf.Counters
module Store = Siesta_store.Store
module Ledger = Siesta_ledger.Ledger
module Regression = Siesta_ledger.Regression
module Divergence = Siesta_analysis.Divergence
module Sweep = Siesta_sweep.Sweep
module Sweep_html = Siesta_sweep.Sweep_html
module Pipeline = Siesta.Pipeline

let with_temp_store f =
  let root = Filename.temp_file "siesta_sweep" ".d" in
  Sys.remove root;
  let st = Store.open_ ~root () in
  Fun.protect
    ~finally:(fun () ->
      Ledger.set_sink None;
      Metrics.set_enabled false;
      Metrics.reset ();
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists root then rm root)
    (fun () -> f st)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Factor schedule parsing *)

let test_parse_factors_valid () =
  Alcotest.(check bool) "plain schedule" true
    (Sweep.parse_factors "1,2,4" = Ok [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check bool) "spaces tolerated" true
    (Sweep.parse_factors " 1, 2 ,8 " = Ok [ 1.0; 2.0; 8.0 ]);
  Alcotest.(check bool) "non-integer factors allowed" true
    (Sweep.parse_factors "1.5,3" = Ok [ 1.5; 3.0 ]);
  Alcotest.(check bool) "single factor" true (Sweep.parse_factors "4" = Ok [ 4.0 ])

let test_parse_factors_rejects_naming_token () =
  let err s =
    match Sweep.parse_factors s with
    | Error msg -> msg
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" s)
  in
  Alcotest.(check bool) "zero named" true (contains (err "1,0,2") "\"0\"");
  Alcotest.(check bool) "negative named" true (contains (err "-3") "\"-3\"");
  Alcotest.(check bool) "nan is not positive" true (contains (err "nan") "not positive");
  Alcotest.(check bool) "junk named" true (contains (err "1,two,4") "\"two\"");
  Alcotest.(check bool) "empty token named" true (contains (err "1,,4") "\"\"");
  Alcotest.(check bool) "duplicate named" true (contains (err "1,2,2") "\"2\" repeats");
  Alcotest.(check bool) "out of order named" true
    (contains (err "4,2") "\"2\" is out of order");
  Alcotest.(check bool) "empty list" true (err "" = "empty factor list")

(* ------------------------------------------------------------------ *)
(* Factor-aware verdicts *)

(* A hand-built report: only the knobs the verdict logic reads. *)
let mk_report ?(count_delta = 0) ?(bytes_delta = 0) ?(unreceived = 0)
    ?(ranks_differ = false) ?(mean = 0.0) () =
  let lossless =
    count_delta = 0 && bytes_delta = 0 && unreceived = 0 && not ranks_differ
  in
  {
    Divergence.r_nranks = 8;
    r_call_stats =
      [
        {
          Divergence.cs_name = "send";
          cs_count_orig = 4;
          cs_count_proxy = 4 + count_delta;
          cs_bytes_orig = 1024;
          cs_bytes_proxy = 1024 + bytes_delta;
        };
      ];
    r_comm_matrix_dist = (if bytes_delta = 0 then 0.0 else 0.1);
    r_lossless = lossless;
    r_reasons = (if lossless then [] else [ "synthetic delta" ]);
    r_count_delta = abs count_delta;
    r_bytes_delta = abs bytes_delta;
    r_unreceived_delta = unreceived;
    (* the hand-built report has no wildcard recvs, so every unreceived
       leftover is a provably orphaned send *)
    r_orphaned_delta = unreceived;
    r_ranks_differ = ranks_differ;
    r_compute_errors =
      [
        {
          Divergence.me_metric = Counters.INS;
          me_mean = mean;
          me_p95 = mean;
          me_max = mean;
          me_events = 16;
        };
      ];
    r_compute_unpaired = 0;
    r_timeline_distance = 0.0;
    r_time_orig = 1.0;
    r_time_proxy = 1.0;
    r_time_error = 0.0;
  }

let verdict_kind = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Divergence.verdict_name v))
    (fun a b -> Divergence.verdict_name a = Divergence.verdict_name b)

let test_verdict_at_factor_semantics () =
  (* byte-only deltas: fatal at factor 1, the shrink working as
     specified at factor > 1 *)
  let bytes_only = mk_report ~bytes_delta:512 () in
  Alcotest.check verdict_kind "factor 1 keeps the strict verdict"
    (Divergence.Comm_divergent []) (Divergence.verdict_at ~factor:1.0 bytes_only);
  Alcotest.check verdict_kind "factor 2 absorbs byte deltas" Divergence.Faithful
    (Divergence.verdict_at ~factor:2.0 bytes_only);
  Alcotest.(check bool) "byte deltas are not structural" true
    (Divergence.structural_lossless bytes_only);
  (* structural violations stay fatal at every factor *)
  let counts = mk_report ~count_delta:1 () in
  Alcotest.check verdict_kind "count delta is comm-divergent at factor 4"
    (Divergence.Comm_divergent []) (Divergence.verdict_at ~factor:4.0 counts);
  Alcotest.(check bool) "count delta names the call" true
    (List.exists (fun s -> contains s "send count") (Divergence.structural_reasons counts));
  let unrecv = mk_report ~unreceived:2 () in
  Alcotest.check verdict_kind "unreceived delta is comm-divergent"
    (Divergence.Comm_divergent []) (Divergence.verdict_at ~factor:8.0 unrecv);
  (* compute bound is on the excess over the expected shrink error
     1 - 1/factor: at factor 2 (expected 0.5, tolerance 0.5) a mean of
     0.9 passes and 1.2 does not *)
  Alcotest.check verdict_kind "shrink-proportional error is faithful" Divergence.Faithful
    (Divergence.verdict_at ~factor:2.0 (mk_report ~mean:0.9 ()));
  Alcotest.check verdict_kind "excess compute error is divergent"
    (Divergence.Compute_divergent "")
    (Divergence.verdict_at ~factor:2.0 (mk_report ~mean:1.2 ()));
  (* the same 0.9 mean at factor 1 is plain compute divergence *)
  Alcotest.check verdict_kind "factor 1 uses the unshifted bound"
    (Divergence.Compute_divergent "")
    (Divergence.verdict_at ~factor:1.0 (mk_report ~mean:0.9 ()))

let test_verdict_rank_ordering () =
  let r = Regression.verdict_rank in
  Alcotest.(check bool) "faithful < compute-divergent" true
    (r "faithful" < r "compute-divergent");
  Alcotest.(check bool) "compute-divergent < comm-divergent" true
    (r "compute-divergent" < r "comm-divergent");
  Alcotest.(check bool) "comm-divergent < unknown" true (r "comm-divergent" < r "gibberish")

(* ------------------------------------------------------------------ *)
(* Ledger sweep records (schema v2) *)

let fid ?(verdict = "faithful") ?(time_error = 0.01) () =
  {
    Ledger.lf_verdict = verdict;
    lf_lossless = true;
    lf_time_error = time_error;
    lf_timeline_distance = 0.02;
    lf_comm_matrix_dist = 0.0;
    lf_max_compute_mean = 0.005;
  }

let sp ?(factor = 2.0) ?(verdict = "faithful") ?(time_error = 0.01) () =
  {
    Ledger.sp_factor = factor;
    sp_fidelity = fid ~verdict ~time_error ();
    sp_count_delta = 0.0;
    sp_bytes_delta = 54926464.0;
    sp_compute_p95 = 0.51;
    sp_compute_max = 0.52;
    sp_proxy_bytes = 1204.0;
    sp_search_s = 0.003;
    sp_total_s = 0.01;
    sp_cache = [ ("trace", "hit"); ("merge", "hit"); ("proxy", "miss") ];
  }

let mk_sweep_record ?(seq = 1) points =
  {
    Ledger.r_schema = Ledger.schema_version;
    r_id = "deadbeefcafe0042";
    r_seq = seq;
    r_kind = "sweep";
    r_time = 1700000000.25;
    r_git = "testtree";
    r_argv = [ "siesta"; "sweep" ];
    r_env = [];
    r_spec = [ ("workload", "CG"); ("nranks", "8"); ("factors", "1,2,4") ];
    r_cache = [];
    r_timings = [ ("sweep.total", 0.04) ];
    r_sched = [];
    r_heap = [];
    r_metrics = Json.Obj [];
    r_fidelity = None;
    r_sweep = points;
    r_check = None;
  }

let test_sweep_record_roundtrip () =
  let r =
    mk_sweep_record
      [ sp ~factor:1.0 (); sp ~factor:2.0 (); sp ~factor:4.0 ~verdict:"comm-divergent" () ]
  in
  let r' = Ledger.decode (Ledger.encode r) in
  Alcotest.(check bool) "sweep record round-trips exactly" true (r' = r);
  (* a pre-v2 record has no "sweep" field: decode as an empty curve *)
  let stripped =
    match Json.parse_exn (Ledger.encode r) with
    | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "sweep") fields)
    | _ -> Alcotest.fail "encode did not produce an object"
  in
  let v1 = Ledger.decode (Json.to_string stripped) in
  Alcotest.(check bool) "missing sweep field decodes to []" true (v1.Ledger.r_sweep = [])

(* ------------------------------------------------------------------ *)
(* Curve-regression dimensions *)

let test_sweep_curve_regression () =
  let base = mk_sweep_record ~seq:1 [ sp ~factor:1.0 (); sp ~factor:2.0 () ] in
  (* identical curves: the per-factor dimensions exist and stay green *)
  let same = mk_sweep_record ~seq:2 [ sp ~factor:1.0 (); sp ~factor:2.0 () ] in
  let c = Regression.compare_runs ~baseline:base same in
  Alcotest.(check bool) "identical curves do not regress" false c.Regression.c_regressed;
  Alcotest.(check bool) "per-factor dimensions present" true
    (List.exists (fun d -> d.Regression.d_name = "sweep.f2") c.Regression.c_dimensions);
  (* a degraded fidelity measure at one factor trips only that factor *)
  let worse =
    mk_sweep_record ~seq:3 [ sp ~factor:1.0 (); sp ~factor:2.0 ~time_error:0.40 () ]
  in
  let c = Regression.compare_runs ~baseline:base worse in
  Alcotest.(check bool) "degraded point regresses the comparison" true
    c.Regression.c_regressed;
  let f2 = List.find (fun d -> d.Regression.d_name = "sweep.f2") c.Regression.c_dimensions in
  Alcotest.(check bool) "sweep.f2 flagged" true f2.Regression.d_regressed;
  Alcotest.(check bool) "note names the degraded measure" true
    (contains f2.Regression.d_note "time_error");
  let f1 = List.find (fun d -> d.Regression.d_name = "sweep.f1") c.Regression.c_dimensions in
  Alcotest.(check bool) "untouched factor stays green" false f1.Regression.d_regressed;
  (* verdict-rank worsening regresses even with steady error numbers *)
  let divergent =
    mk_sweep_record ~seq:4 [ sp ~factor:1.0 (); sp ~factor:2.0 ~verdict:"comm-divergent" () ]
  in
  let c = Regression.compare_runs ~baseline:base divergent in
  let f2 = List.find (fun d -> d.Regression.d_name = "sweep.f2") c.Regression.c_dimensions in
  Alcotest.(check bool) "verdict worsening flagged" true f2.Regression.d_regressed;
  (* improvement is not a regression; one-sided factors are
     informational only *)
  let c = Regression.compare_runs ~baseline:worse { same with Ledger.r_seq = 5 } in
  Alcotest.(check bool) "recovery is ok" false c.Regression.c_regressed;
  let extended =
    mk_sweep_record ~seq:6
      [ sp ~factor:1.0 (); sp ~factor:2.0 (); sp ~factor:4.0 ~verdict:"comm-divergent" () ]
  in
  let c = Regression.compare_runs ~baseline:base extended in
  let f4 = List.find (fun d -> d.Regression.d_name = "sweep.f4") c.Regression.c_dimensions in
  Alcotest.(check bool) "factor absent from baseline never regresses" false
    f4.Regression.d_regressed;
  Alcotest.(check bool) "one-sided note explains itself" true
    (contains f4.Regression.d_note "not in baseline");
  (* records without curves contribute no sweep dimensions *)
  let plain = { (mk_sweep_record ~seq:7 []) with Ledger.r_kind = "synth" } in
  let c = Regression.compare_runs ~baseline:plain { plain with Ledger.r_seq = 8 } in
  Alcotest.(check bool) "no curves, no sweep dims" false
    (List.exists
       (fun d -> contains d.Regression.d_name "sweep.f")
       c.Regression.c_dimensions)

let test_comparison_to_json () =
  let base = mk_sweep_record ~seq:1 [ sp ~factor:2.0 () ] in
  let cur = mk_sweep_record ~seq:2 [ sp ~factor:2.0 ~time_error:0.40 () ] in
  let c = Regression.compare_runs ~baseline:base cur in
  let j = Json.parse_exn (Regression.to_json c) in
  (match Json.member "regressed" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "regressed flag missing or false");
  match Json.member "dimensions" j with
  | Some (Json.Arr dims) ->
      let f2 =
        List.find_opt
          (fun d -> Json.member "name" d = Some (Json.Str "sweep.f2"))
          dims
      in
      (match f2 with
      | Some d ->
          Alcotest.(check bool) "dimension carries regressed bool" true
            (Json.member "regressed" d = Some (Json.Bool true))
      | None -> Alcotest.fail "sweep.f2 dimension missing from JSON")
  | _ -> Alcotest.fail "dimensions array missing"

(* ------------------------------------------------------------------ *)
(* End-to-end: Sweep.run *)

let test_sweep_run_end_to_end () =
  with_temp_store @@ fun st ->
  Ledger.set_sink (Some st);
  let s = Pipeline.spec ~iters:3 ~seed:42 ~workload:"CG" ~nranks:8 () in
  let factors = [ 1.0; 2.0 ] in
  let cold = Sweep.run ~cache:true ~store:st ~factors s in
  let warm = Sweep.run ~cache:true ~store:st ~factors s in
  Ledger.set_sink None;
  (* one "sweep" record per invocation — the per-factor synth/diff
     emissions are parked while the schedule executes *)
  let rs = Ledger.runs st in
  Alcotest.(check int) "exactly two records" 2 (List.length rs);
  Alcotest.(check (list string)) "both are sweep records" [ "sweep"; "sweep" ]
    (List.map (fun r -> r.Ledger.r_kind) rs);
  List.iter
    (fun r ->
      Alcotest.(check int) "curve has one point per factor" (List.length factors)
        (List.length r.Ledger.r_sweep);
      Alcotest.(check (list (float 0.0))) "point factors match the schedule" factors
        (List.map (fun p -> p.Ledger.sp_factor) r.Ledger.r_sweep);
      Alcotest.(check (option string)) "factors stamped into the spec" (Some "1,2")
        (List.assoc_opt "factors" r.Ledger.r_spec))
    rs;
  (* the warm sweep replays every stage from cache with the same curve *)
  List.iter
    (fun p ->
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "factor %g warm point all hits" p.Sweep.p_factor)
        [ ("trace", "hit"); ("merge", "hit"); ("proxy", "hit") ]
        p.Sweep.p_cache)
    warm.Sweep.s_points;
  List.iter2
    (fun c w ->
      Alcotest.(check (float 0.0)) "warm curve equals cold curve"
        c.Sweep.p_report.Divergence.r_time_error w.Sweep.p_report.Divergence.r_time_error;
      Alcotest.(check int) "warm proxy bytes equal cold" c.Sweep.p_proxy_bytes
        w.Sweep.p_proxy_bytes)
    cold.Sweep.s_points warm.Sweep.s_points;
  Alcotest.(check (list (float 0.0))) "seed workload never comm-divergent" []
    (Sweep.comm_divergent warm);
  (* a comm (byte-level) perturbation is fatal at factor 1, where the
     strict verdict applies, and absorbed at factor > 1 where byte
     deltas are the shrink working as specified; its record still trips
     the curve-regression gate against the clean baseline through the
     factor-1 verdict worsening *)
  Ledger.set_sink (Some st);
  let bad = Sweep.run ~cache:true ~store:st ~perturb:`Comm ~factors s in
  Ledger.set_sink None;
  Alcotest.(check (list (float 0.0))) "perturbed sweep comm-divergent at factor 1 only"
    [ 1.0 ]
    (Sweep.comm_divergent bad);
  (match Ledger.runs st with
  | [ clean_base; _; perturbed ] ->
      let c = Regression.compare_runs ~baseline:clean_base perturbed in
      Alcotest.(check bool) "perturbed curve regresses" true c.Regression.c_regressed;
      Alcotest.(check bool) "a sweep.f dimension is the one flagged" true
        (List.exists
           (fun d -> contains d.Regression.d_name "sweep.f" && d.Regression.d_regressed)
           c.Regression.c_dimensions)
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 records, got %d" (List.length rs)));
  (* empty schedules are a programming error, not a silent no-op *)
  match Sweep.run ~factors:[] s with
  | _ -> Alcotest.fail "empty schedule must raise"
  | exception Invalid_argument _ -> ()

let test_sweep_html_embeds_valid_json () =
  with_temp_store @@ fun st ->
  let s = Pipeline.spec ~iters:3 ~seed:42 ~workload:"CG" ~nranks:8 () in
  let t = Sweep.run ~cache:true ~store:st ~factors:[ 1.0; 2.0 ] s in
  let html = Sweep_html.render ~title:"t" t in
  let marker = {|<script type="application/json" id="sweep-data">|} in
  let start =
    let nh = String.length html and nn = String.length marker in
    let rec go i =
      if i + nn > nh then Alcotest.fail "sweep-data block missing"
      else if String.sub html i nn = marker then i + nn
      else go (i + 1)
    in
    go 0
  in
  let finish =
    let close = "</script>" in
    let nh = String.length html and nn = String.length close in
    let rec go i =
      if i + nn > nh then Alcotest.fail "sweep-data block unterminated"
      else if String.sub html i nn = close then i
      else go (i + 1)
    in
    go start
  in
  let j = Json.parse_exn (String.sub html start (finish - start)) in
  (match Json.member "points" j with
  | Some (Json.Arr pts) -> Alcotest.(check int) "both points embedded" 2 (List.length pts)
  | _ -> Alcotest.fail "points array missing");
  match Json.member "factors" j with
  | Some (Json.Arr _) -> ()
  | _ -> Alcotest.fail "factors array missing"

let suite =
  [
    Alcotest.test_case "parse factors: valid schedules" `Quick test_parse_factors_valid;
    Alcotest.test_case "parse factors: rejects name the token" `Quick
      test_parse_factors_rejects_naming_token;
    Alcotest.test_case "verdict_at factor semantics" `Quick test_verdict_at_factor_semantics;
    Alcotest.test_case "verdict rank ordering" `Quick test_verdict_rank_ordering;
    Alcotest.test_case "sweep record roundtrip" `Quick test_sweep_record_roundtrip;
    Alcotest.test_case "sweep curve regression dims" `Quick test_sweep_curve_regression;
    Alcotest.test_case "comparison to_json" `Quick test_comparison_to_json;
    Alcotest.test_case "sweep run end to end" `Slow test_sweep_run_end_to_end;
    Alcotest.test_case "sweep html embeds valid json" `Slow test_sweep_html_embeds_valid_json;
  ]
