(** Self-contained HTML dashboard over one fidelity sweep ([siesta sweep
    --html]).  Same contract as the other viewers: a single file with
    zero external requests, the {!Sweep.to_json} curve embedded in a
    [sweep-data] application/json block other tools can scrape, and
    canvas charts (fidelity errors, proxy size, synthesis cost vs
    factor, on a log2 x-axis) via the shared
    {!Siesta_obs.Html_embed.chart_js} machinery. *)

val render : ?title:string -> Sweep.t -> string

val write : ?title:string -> Sweep.t -> path:string -> unit
(** {!render} to a file. *)
