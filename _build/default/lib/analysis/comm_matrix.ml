module Event = Siesta_trace.Event
module Call = Siesta_mpi.Call

type t = {
  nranks : int;
  msgs : int array;  (* row-major P x P *)
  vols : int array;
}

let idx t src dst = (src * t.nranks) + dst

let of_streams ~nranks streams =
  if Array.length streams <> nranks then invalid_arg "Comm_matrix.of_streams: stream count";
  let t = { nranks; msgs = Array.make (nranks * nranks) 0; vols = Array.make (nranks * nranks) 0 } in
  Array.iteri
    (fun rank evs ->
      Array.iter
        (fun ev ->
          let record rel bytes =
            if rel <> Call.any_source then begin
              let dst = (rank + rel) mod nranks in
              let i = idx t rank dst in
              t.msgs.(i) <- t.msgs.(i) + 1;
              t.vols.(i) <- t.vols.(i) + bytes
            end
          in
          match (ev : Event.t) with
          | Event.Send p | Event.Isend (p, _) ->
              record p.Event.rel_peer (Event.payload_bytes ev)
          | Event.Sendrecv { send; _ } ->
              record send.Event.rel_peer
                (Siesta_mpi.Datatype.bytes send.Event.dt ~count:send.Event.count)
          | _ -> ())
        evs)
    streams;
  t

let of_recorder recorder =
  let nranks = Siesta_trace.Recorder.nranks recorder in
  of_streams ~nranks (Array.init nranks (Siesta_trace.Recorder.events recorder))

let nranks t = t.nranks
let messages t ~src ~dst = t.msgs.(idx t src dst)
let bytes t ~src ~dst = t.vols.(idx t src dst)
let total_messages t = Array.fold_left ( + ) 0 t.msgs
let total_bytes t = Array.fold_left ( + ) 0 t.vols

let edges t =
  let out = ref [] in
  for src = t.nranks - 1 downto 0 do
    for dst = t.nranks - 1 downto 0 do
      let i = idx t src dst in
      if t.msgs.(i) > 0 then out := (src, dst, t.msgs.(i), t.vols.(i)) :: !out
    done
  done;
  !out

let offsets t =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, m, _) ->
      let off = (dst - src + t.nranks) mod t.nranks in
      Hashtbl.replace acc off (m + Option.value ~default:0 (Hashtbl.find_opt acc off)))
    (edges t);
  Hashtbl.fold (fun off m l -> (off, m) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let render ?(max_ranks = 32) t =
  let n = min t.nranks max_ranks in
  let buf = Buffer.create ((n + 2) * (n + 2)) in
  Buffer.add_string buf
    (Printf.sprintf "p2p volume heat map (%d of %d ranks; digit = log10 bytes)\n" n t.nranks);
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let v = t.vols.(idx t src dst) in
      Buffer.add_char buf
        (if v = 0 then '.'
         else Char.chr (Char.code '0' + min 9 (int_of_float (log10 (float_of_int v)))))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
