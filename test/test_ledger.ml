(* Tests for the persistent run ledger (Siesta_ledger): record
   encode/decode, append/seq assignment, retention gc, the emission
   sink's gating, the regression radar's per-dimension verdicts, the
   trend dashboard's embedded data block, and the pipeline integration
   that writes one record per public invocation.

   The ledger rides on the content-addressed store, so every test runs
   against a throwaway store root and checks `Store.verify` stays clean
   — a damaged ledger must never look like a damaged cache. *)

module Json = Siesta_obs.Json
module Metrics = Siesta_obs.Metrics
module Run_id = Siesta_obs.Run_id
module Store = Siesta_store.Store
module Codec = Siesta_store.Codec
module Hash = Siesta_store.Hash
module Ledger = Siesta_ledger.Ledger
module Regression = Siesta_ledger.Regression
module Trend_html = Siesta_ledger.Trend_html
module Pipeline = Siesta.Pipeline

(* A fresh, empty store rooted in a temp directory; the sink is always
   disarmed on the way out so later suites never write here. *)
let with_temp_store f =
  let root = Filename.temp_file "siesta_ledger" ".d" in
  Sys.remove root;
  let st = Store.open_ ~root () in
  Fun.protect
    ~finally:(fun () ->
      Ledger.set_sink None;
      Metrics.set_enabled false;
      Metrics.reset ();
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists root then rm root)
    (fun () -> f st)

let check_verify_clean what st =
  let v = Store.verify st in
  Alcotest.(check (list string)) (what ^ ": store verify clean") [] v.Store.v_issues

(* A hand-built record: deterministic fields, no process-state capture,
   so compare tests pin exact numbers. *)
let mk ?(seq = 0) ?(kind = "synth") ?(workload = "CG") ?(nranks = "8")
    ?(timings = [ ("pipeline.trace", 0.10); ("pipeline.merge", 0.20) ]) ?fidelity
    ?(sweep = []) ?check ?(metrics = Json.Obj []) () =
  {
    Ledger.r_schema = Ledger.schema_version;
    r_id = "deadbeefcafe0042";
    r_seq = seq;
    r_kind = kind;
    r_time = 1700000000.25;
    r_git = "testtree";
    r_argv = [ "siesta"; "synth" ];
    r_env = [ ("SIESTA_LOG", "warn") ];
    r_spec = [ ("workload", workload); ("nranks", nranks) ];
    r_cache = [ ("trace", "hit") ];
    r_timings = timings;
    r_sched = [ ("effective", 4.0) ];
    r_heap = [ ("minor_words", 1234.0) ];
    r_metrics = metrics;
    r_fidelity = fidelity;
    r_sweep = sweep;
    r_check = check;
  }

let fid ?(verdict = "faithful") ?(time_error = 0.01) ?(timeline = 0.02) ?(comm = 0.0)
    ?(compute = 0.005) () =
  {
    Ledger.lf_verdict = verdict;
    lf_lossless = true;
    lf_time_error = time_error;
    lf_timeline_distance = timeline;
    lf_comm_matrix_dist = comm;
    lf_max_compute_mean = compute;
  }

(* ------------------------------------------------------------------ *)
(* Encoding *)

let test_encode_decode_roundtrip () =
  (* awkward strings (quotes, backslashes, control chars) and a nested
     metrics snapshot must come back field-for-field identical *)
  let metrics =
    Json.Obj
      [
        ("cache.hits", Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num 3.0) ]);
        ( "h\"isto\\weird",
          Json.Obj
            [
              ("type", Json.Str "histogram");
              ("buckets", Json.Arr [ Json.Arr [ Json.Num 1.0; Json.Num 2.0 ] ]);
            ] );
      ]
  in
  let r =
    {
      (mk ~seq:7 ~kind:"diff" ~fidelity:(fid ~verdict:"comm-divergent" ()) ~metrics ())
      with
      Ledger.r_argv = [ "siesta"; "diff"; "-w"; "a b\"c" ];
      r_env = [ ("SIESTA_STORE", "/tmp/x\ty") ];
      r_spec = [ ("workload", "CG"); ("nranks", "8"); ("seed", "42") ];
    }
  in
  let r' = Ledger.decode (Ledger.encode r) in
  Alcotest.(check bool) "record round-trips exactly" true (r' = r);
  (* fidelity None encodes as JSON null and decodes back to None *)
  let plain = mk ~seq:1 () in
  let plain' = Ledger.decode (Ledger.encode plain) in
  Alcotest.(check bool) "fidelity None round-trips" true (plain' = plain);
  Alcotest.(check bool) "fidelity is None" true (plain'.Ledger.r_fidelity = None)

let test_decode_refuses_newer_schema () =
  let r = mk () in
  let j = Json.parse_exn (Ledger.encode r) in
  let bumped =
    match j with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "ledger_schema" then
                 (k, Json.Num (float_of_int (Ledger.schema_version + 1)))
               else (k, v))
             fields)
    | _ -> Alcotest.fail "encode did not produce an object"
  in
  (match Ledger.decode (Json.to_string bumped) with
  | _ -> Alcotest.fail "newer schema must be refused"
  | exception Failure _ -> ());
  (* unknown extra fields from an additive older-compatible change are
     fine: decoding ignores them *)
  let extended =
    match j with
    | Json.Obj fields -> Json.Obj (fields @ [ ("future_field", Json.Str "x") ])
    | _ -> assert false
  in
  let r' = Ledger.decode (Json.to_string extended) in
  Alcotest.(check bool) "extra fields ignored" true (r' = r)

let test_make_captures_process_state () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Metrics.incr (Metrics.counter "test.counter") 5;
  let r =
    Ledger.make ~kind:"synth"
      ~spec:[ ("workload", "CG") ]
      ~timings:[ ("a", 0.5); ("bad", Float.nan); ("b", 0.25) ]
      ~sched:[ ("x", Float.nan) ]
      ()
  in
  Metrics.set_enabled false;
  Metrics.reset ();
  Alcotest.(check string) "id is the process run id" (Run_id.get ()) r.Ledger.r_id;
  Alcotest.(check int) "seq unassigned until append" 0 r.Ledger.r_seq;
  Alcotest.(check bool) "git describe is non-empty" true (String.length r.Ledger.r_git > 0);
  Alcotest.(check bool) "argv captured" true (List.length r.Ledger.r_argv > 0);
  Alcotest.(check (list (pair string (float 0.0)))) "nan timings dropped"
    [ ("a", 0.5); ("b", 0.25) ]
    r.Ledger.r_timings;
  Alcotest.(check (list (pair string (float 0.0)))) "nan sched dropped" [] r.Ledger.r_sched;
  Alcotest.(check bool) "heap stats captured" true (List.length r.Ledger.r_heap > 0);
  (match Option.bind (Json.member "test.counter" r.Ledger.r_metrics) (Json.member "value") with
  | Some (Json.Num v) -> Alcotest.(check (float 0.0)) "metrics snapshot embedded" 5.0 v
  | _ -> Alcotest.fail "metrics snapshot missing test.counter")

(* ------------------------------------------------------------------ *)
(* Store I/O *)

let test_append_assigns_monotone_seq () =
  with_temp_store @@ fun st ->
  let a = Ledger.append st (mk ~kind:"trace" ()) in
  let b = Ledger.append st (mk ~kind:"synth" ()) in
  let c = Ledger.append st (mk ~kind:"diff" ~fidelity:(fid ()) ()) in
  Alcotest.(check (list int)) "sequence numbers 1,2,3" [ 1; 2; 3 ]
    [ a.Ledger.r_seq; b.Ledger.r_seq; c.Ledger.r_seq ];
  let rs = Ledger.runs st in
  Alcotest.(check (list int)) "runs ordered by seq" [ 1; 2; 3 ]
    (List.map (fun r -> r.Ledger.r_seq) rs);
  Alcotest.(check (list string)) "kinds preserved" [ "trace"; "synth"; "diff" ]
    (List.map (fun r -> r.Ledger.r_kind) rs);
  check_verify_clean "after appends" st

let test_runs_skips_corrupt_record () =
  with_temp_store @@ fun st ->
  let _ = Ledger.append st (mk ()) in
  (* a well-framed blob whose payload is not a ledger document: [runs]
     must warn and skip it, not fail the whole listing *)
  let garbage = Codec.encode_run "this is not json" in
  let hash = Store.put st garbage in
  Store.bind st ~key:(Hash.content_hash "corrupt run")
    ~hash ~kind:Ledger.run_kind ~descr:"run #99 synth id=bad t=0.000000";
  let rs = Ledger.runs st in
  Alcotest.(check int) "only the valid record survives" 1 (List.length rs);
  Alcotest.(check int) "its seq is intact" 1 (List.hd rs).Ledger.r_seq

let test_find_by_seq_and_prefix () =
  with_temp_store @@ fun st ->
  let _ = Ledger.append st (mk ()) in
  let _ = Ledger.append st (mk ()) in
  let by_seq = Ledger.find st "2" in
  Alcotest.(check (option int)) "find by integer seq" (Some 2)
    (Option.map (fun r -> r.Ledger.r_seq) by_seq);
  (* both records share one id; the prefix must resolve to the newest *)
  let by_prefix = Ledger.find st "deadbeef" in
  Alcotest.(check (option int)) "id prefix picks the newest" (Some 2)
    (Option.map (fun r -> r.Ledger.r_seq) by_prefix);
  Alcotest.(check bool) "unknown selector is None" true (Ledger.find st "0123456" = None);
  Alcotest.(check bool) "out-of-range seq is None" true (Ledger.find st "99" = None)

let test_gc_keeps_newest_and_spares_stages () =
  with_temp_store @@ fun st ->
  (* a stage artifact binding sharing the store with the ledger *)
  let stage_blob = Codec.frame ~kind:"trace" "pretend stage payload" in
  let stage_hash = Store.put st stage_blob in
  Store.bind st ~key:(Hash.content_hash "stage key") ~hash:stage_hash ~kind:"trace"
    ~descr:"trace CG n=8";
  for _ = 1 to 5 do
    ignore (Ledger.append st (mk ()))
  done;
  let dropped = Ledger.gc st ~keep:2 in
  Alcotest.(check int) "three dropped" 3 dropped;
  let rs = Ledger.runs st in
  Alcotest.(check (list int)) "newest two kept" [ 4; 5 ]
    (List.map (fun r -> r.Ledger.r_seq) rs);
  (* seq keeps climbing after a prune — no recycled numbers *)
  let next = Ledger.append st (mk ()) in
  Alcotest.(check int) "seq monotone across gc" 6 next.Ledger.r_seq;
  (* the stage binding is untouched and the sweep only reclaims run blobs *)
  let stats = Store.gc st in
  Alcotest.(check bool) "sweep reclaimed pruned run blobs" true (stats.Store.swept > 0);
  Alcotest.(check bool) "stage binding still resolves" true
    (Store.resolve st ~key:(Hash.content_hash "stage key") = Some stage_hash);
  check_verify_clean "after ledger gc + store gc" st;
  Alcotest.(check int) "gc below keep is a no-op" 0 (Ledger.gc st ~keep:100)

let test_emit_sink_gating () =
  with_temp_store @@ fun st ->
  Ledger.set_sink None;
  let forced = ref false in
  Ledger.emit (fun () -> forced := true; mk ());
  Alcotest.(check bool) "thunk never forced without a sink" false !forced;
  Ledger.set_sink (Some st);
  Ledger.emit (fun () -> forced := true; mk ());
  Alcotest.(check bool) "thunk forced once armed" true !forced;
  Alcotest.(check int) "record landed" 1 (List.length (Ledger.runs st));
  (* a raising thunk is logged, not propagated: telemetry must not fail
     the pipeline *)
  Ledger.emit (fun () -> failwith "boom");
  Alcotest.(check int) "failed emission appends nothing" 1 (List.length (Ledger.runs st));
  Ledger.set_sink None

(* ------------------------------------------------------------------ *)
(* Regression radar *)

let test_compare_identical_runs_ok () =
  let base = mk ~seq:1 ~fidelity:(fid ()) () in
  let cur = { (mk ~seq:2 ~fidelity:(fid ()) ()) with Ledger.r_time = 1700000001.0 } in
  let c = Regression.compare_runs ~baseline:base cur in
  Alcotest.(check bool) "identical runs do not regress" false c.Regression.c_regressed;
  Alcotest.(check bool) "verdict dimension present" true
    (List.exists (fun d -> d.Regression.d_name = "verdict") c.Regression.c_dimensions);
  Alcotest.(check bool) "per-stage dimensions present" true
    (List.exists
       (fun d -> d.Regression.d_name = "stage.pipeline.trace")
       c.Regression.c_dimensions)

let test_compare_stage_blowup_regresses () =
  let base = mk ~seq:1 ~timings:[ ("pipeline.merge", 0.10) ] () in
  let blown = mk ~seq:2 ~timings:[ ("pipeline.merge", 0.40) ] () in
  let c = Regression.compare_runs ~baseline:base blown in
  Alcotest.(check bool) "3x blowup over the floor regresses" true c.Regression.c_regressed;
  let dim =
    List.find (fun d -> d.Regression.d_name = "stage.pipeline.merge") c.Regression.c_dimensions
  in
  Alcotest.(check bool) "the stage dimension is the one flagged" true dim.Regression.d_regressed;
  Alcotest.(check bool) "note explains the ratio" true
    (String.length dim.Regression.d_note > 0);
  (* the same ratio under the absolute floor is scheduler noise, not a
     regression: 3x of 1 ms moves 2 ms, below the 50 ms floor *)
  let tiny_base = mk ~seq:1 ~timings:[ ("pipeline.merge", 0.001) ] () in
  let tiny_cur = mk ~seq:2 ~timings:[ ("pipeline.merge", 0.003) ] () in
  let c2 = Regression.compare_runs ~baseline:tiny_base tiny_cur in
  Alcotest.(check bool) "sub-floor blowup is ok" false c2.Regression.c_regressed;
  (* custom thresholds tighten the floor *)
  let strict = { Regression.default with Regression.t_stage_min_s = 0.001 } in
  let c3 = Regression.compare_runs ~thresholds:strict ~baseline:tiny_base tiny_cur in
  Alcotest.(check bool) "tight floor flags it" true c3.Regression.c_regressed

let test_compare_verdict_degradation_regresses () =
  let base = mk ~seq:1 ~kind:"diff" ~fidelity:(fid ~verdict:"faithful" ()) () in
  let cur = mk ~seq:2 ~kind:"diff" ~fidelity:(fid ~verdict:"comm-divergent" ~comm:0.8 ()) () in
  let c = Regression.compare_runs ~baseline:base cur in
  Alcotest.(check bool) "verdict degradation regresses" true c.Regression.c_regressed;
  let vd = List.find (fun d -> d.Regression.d_name = "verdict") c.Regression.c_dimensions in
  Alcotest.(check bool) "verdict dimension flagged" true vd.Regression.d_regressed;
  let cd =
    List.find
      (fun d -> d.Regression.d_name = "fidelity.comm_matrix_dist")
      c.Regression.c_dimensions
  in
  Alcotest.(check bool) "the drifting fidelity number is flagged too" true
    cd.Regression.d_regressed;
  (* the reverse direction (recovery) is not a regression *)
  let back = Regression.compare_runs ~baseline:cur { base with Ledger.r_seq = 3 } in
  Alcotest.(check bool) "verdict recovery is ok" false back.Regression.c_regressed;
  (* a one-sided verdict is informational only *)
  let noverdict = mk ~seq:4 () in
  let c2 = Regression.compare_runs ~baseline:base noverdict in
  Alcotest.(check bool) "missing current verdict never regresses" false
    (List.exists
       (fun d -> d.Regression.d_name = "verdict" && d.Regression.d_regressed)
       c2.Regression.c_dimensions)

let test_compare_metric_watchlist_one_sided () =
  let counter v = Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num v) ] in
  let base = mk ~seq:1 ~metrics:(Json.Obj [ ("cache.misses", counter 3.0) ]) () in
  let cur = mk ~seq:2 ~metrics:(Json.Obj [ ("cache.hits", counter 3.0) ]) () in
  let c = Regression.compare_runs ~baseline:base cur in
  let metric name =
    List.find_opt (fun d -> d.Regression.d_name = "metric." ^ name) c.Regression.c_dimensions
  in
  (* a cold->warm transition has each counter on only one side; absent
     reads as zero so the delta still tells the story *)
  (match metric "cache.hits" with
  | Some d ->
      Alcotest.(check string) "hits baseline reads 0" "0" d.Regression.d_base;
      Alcotest.(check string) "hits current reads 3" "3" d.Regression.d_cur;
      Alcotest.(check bool) "informational only" false d.Regression.d_regressed
  | None -> Alcotest.fail "one-sided cache.hits dimension missing");
  (match metric "cache.misses" with
  | Some d -> Alcotest.(check string) "misses current reads 0" "0" d.Regression.d_cur
  | None -> Alcotest.fail "one-sided cache.misses dimension missing");
  Alcotest.(check bool) "absent-on-both watchlist metric dropped" true
    (metric "pipeline.traces" = None)

let test_baseline_selection () =
  let rs =
    [
      mk ~seq:1 ~workload:"CG" ();
      mk ~seq:2 ~workload:"FT" ();
      mk ~seq:3 ~workload:"CG" ();
      mk ~seq:4 ~workload:"CG" ~nranks:"16" ();
    ]
  in
  let cur = mk ~seq:5 ~workload:"CG" () in
  (* newest earlier record with the same kind, workload and nranks *)
  Alcotest.(check (option int)) "newest comparable wins" (Some 3)
    (Option.map (fun r -> r.Ledger.r_seq) (Regression.baseline_for rs cur));
  let ft = mk ~seq:5 ~workload:"FT" () in
  Alcotest.(check (option int)) "workload filters" (Some 2)
    (Option.map (fun r -> r.Ledger.r_seq) (Regression.baseline_for rs ft));
  let novel = mk ~seq:5 ~workload:"MG" () in
  Alcotest.(check bool) "no comparable history is None" true
    (Regression.baseline_for rs novel = None);
  (* render is exercised for shape, not pixel-exactness *)
  let c = Regression.compare_runs ~baseline:(mk ~seq:1 ()) (mk ~seq:2 ()) in
  let txt = Regression.render c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "render mentions %S" needle) true
        (let nh = String.length txt and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub txt i nn = needle || go (i + 1)) in
         go 0))
    [ "baseline:"; "current:"; "dimension"; "no regression" ]

(* ------------------------------------------------------------------ *)
(* Trend dashboard *)

let test_trend_html_embeds_valid_json () =
  let records =
    [
      mk ~seq:1 ();
      mk ~seq:2 ~kind:"diff" ~fidelity:(fid ()) ();
      (* awkward content that must be escaped inside the data block *)
      { (mk ~seq:3 ~workload:"</script><b>x" ()) with Ledger.r_git = "v1.0-3-g\"q\"" };
    ]
  in
  let html = Trend_html.render ~title:"t" records in
  let marker = {|<script type="application/json" id="ledger-data">|} in
  let start =
    let nh = String.length html and nn = String.length marker in
    let rec go i =
      if i + nn > nh then Alcotest.fail "ledger-data block missing"
      else if String.sub html i nn = marker then i + nn
      else go (i + 1)
    in
    go 0
  in
  let finish =
    let close = "</script>" in
    let nh = String.length html and nn = String.length close in
    let rec go i =
      if i + nn > nh then Alcotest.fail "ledger-data block unterminated"
      else if String.sub html i nn = close then i
      else go (i + 1)
    in
    go start
  in
  let payload = String.sub html start (finish - start) in
  (* a raw </script> in the data would have ended the block early and
     left invalid JSON here, so parsing doubles as the escaping check *)
  let j = Json.parse_exn payload in
  (match Json.member "runs" j with
  | Some (Json.Arr runs) -> Alcotest.(check int) "all records embedded" 3 (List.length runs)
  | _ -> Alcotest.fail "runs array missing");
  (* write produces the same self-contained document *)
  let path = Filename.temp_file "siesta_trend" ".html" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trend_html.write ~title:"t" records ~path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "write emits render's bytes" (String.length html) len

(* ------------------------------------------------------------------ *)
(* Store introspection (drives `siesta store ls --long`) *)

let test_store_object_size_and_objects () =
  with_temp_store @@ fun st ->
  let blob = Codec.encode_run "payload for sizing" in
  let hash = Store.put st blob in
  Alcotest.(check (option int)) "object_size is the framed length"
    (Some (String.length blob))
    (Store.object_size st hash);
  Alcotest.(check bool) "absent hash sizes to None" true
    (Store.object_size st "00000000000000000000000000000000" = None);
  let objs = Store.objects st in
  Alcotest.(check bool) "objects lists the unreferenced blob" true
    (List.mem_assoc hash objs);
  Alcotest.(check int) "objects sizes agree with size_bytes"
    (Store.size_bytes st)
    (List.fold_left (fun acc (_, b) -> acc + b) 0 objs)

(* ------------------------------------------------------------------ *)
(* Pipeline integration *)

let test_pipeline_emits_records () =
  with_temp_store @@ fun st ->
  Metrics.reset ();
  Metrics.set_enabled true;
  Ledger.set_sink (Some st);
  let s = Pipeline.spec ~iters:3 ~seed:42 ~workload:"CG" ~nranks:8 () in
  let _cold = Pipeline.synthesize_spec ~cache:true ~store:st s in
  let _warm = Pipeline.synthesize_spec ~cache:true ~store:st s in
  Ledger.set_sink None;
  Metrics.set_enabled false;
  Metrics.reset ();
  let synths = List.filter (fun r -> r.Ledger.r_kind = "synth") (Ledger.runs st) in
  Alcotest.(check int) "one synth record per invocation" 2 (List.length synths);
  let cold = List.hd synths and warm = List.nth synths 1 in
  Alcotest.(check (option string)) "cold run recorded a trace miss" (Some "miss")
    (List.assoc_opt "trace" cold.Ledger.r_cache);
  Alcotest.(check (option string)) "warm run recorded a trace hit" (Some "hit")
    (List.assoc_opt "trace" warm.Ledger.r_cache);
  Alcotest.(check (option string)) "spec captured" (Some "CG")
    (List.assoc_opt "workload" warm.Ledger.r_spec);
  Alcotest.(check bool) "timings captured" true (List.length warm.Ledger.r_timings > 0);
  Alcotest.(check bool) "metrics snapshot non-trivial" true
    (warm.Ledger.r_metrics <> Json.Obj []);
  (* the warm record is a valid regression baseline for itself *)
  let c = Regression.compare_runs ~baseline:cold warm in
  Alcotest.(check bool) "warm vs cold compares without regression dims exploding" true
    (List.length c.Regression.c_dimensions > 0);
  check_verify_clean "after pipeline emission" st

let test_diff_emits_fidelity () =
  with_temp_store @@ fun st ->
  Ledger.set_sink (Some st);
  let s = Pipeline.spec ~iters:3 ~seed:42 ~workload:"CG" ~nranks:8 () in
  let sy = Pipeline.synthesize_spec s in
  let _fid = Pipeline.diff_synthesis sy in
  Ledger.set_sink None;
  let diffs = List.filter (fun r -> r.Ledger.r_kind = "diff") (Ledger.runs st) in
  Alcotest.(check int) "diff emitted one record" 1 (List.length diffs);
  match (List.hd diffs).Ledger.r_fidelity with
  | None -> Alcotest.fail "diff record carries no fidelity"
  | Some f ->
      Alcotest.(check bool) "verdict is a known name" true
        (List.mem f.Ledger.lf_verdict [ "faithful"; "compute-divergent"; "comm-divergent" ]);
      Alcotest.(check bool) "time error is finite" true (Float.is_finite f.Ledger.lf_time_error)

let suite =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "decode refuses newer schema" `Quick test_decode_refuses_newer_schema;
    Alcotest.test_case "make captures process state" `Quick test_make_captures_process_state;
    Alcotest.test_case "append assigns monotone seq" `Quick test_append_assigns_monotone_seq;
    Alcotest.test_case "runs skips corrupt record" `Quick test_runs_skips_corrupt_record;
    Alcotest.test_case "find by seq and prefix" `Quick test_find_by_seq_and_prefix;
    Alcotest.test_case "gc keeps newest, spares stages" `Quick
      test_gc_keeps_newest_and_spares_stages;
    Alcotest.test_case "emit sink gating" `Quick test_emit_sink_gating;
    Alcotest.test_case "compare identical runs ok" `Quick test_compare_identical_runs_ok;
    Alcotest.test_case "compare stage blowup" `Quick test_compare_stage_blowup_regresses;
    Alcotest.test_case "compare verdict degradation" `Quick
      test_compare_verdict_degradation_regresses;
    Alcotest.test_case "compare metric watchlist" `Quick
      test_compare_metric_watchlist_one_sided;
    Alcotest.test_case "baseline selection and render" `Quick test_baseline_selection;
    Alcotest.test_case "trend html embeds valid json" `Quick test_trend_html_embeds_valid_json;
    Alcotest.test_case "store object sizes" `Quick test_store_object_size_and_objects;
    Alcotest.test_case "pipeline emits records" `Slow test_pipeline_emits_records;
    Alcotest.test_case "diff emits fidelity" `Slow test_diff_emits_fidelity;
  ]
