module Counters = Siesta_perf.Counters
module Spec = Siesta_platform.Spec
module Block = Siesta_blocks.Block

type solution = {
  x : float array;
  achieved : Counters.t;
  ratio_error : float;
}

let safe_rel a r = if r = 0.0 then (if a = 0.0 then 0.0 else 1.0) else abs_float (a -. r) /. r

let ratio_error ~actual ~reference =
  (safe_rel (Counters.ipc actual) (Counters.ipc reference)
  +. safe_rel (Counters.cmr actual) (Counters.cmr reference)
  +. safe_rel (Counters.bmr actual) (Counters.bmr reference))
  /. 3.0

let achieved_of platform x =
  List.fold_left
    (fun acc w -> Counters.add acc (Counters.of_work platform.Spec.cpu w))
    Counters.zero
    (Block.works_of_combination x)

(* Greedy pattern-directed search, following MINIME's loop: start from a
   seed pattern, then repeatedly try multiplicative adjustments of single
   block counts and keep the best improvement of the three-ratio error.
   Steps shrink 2.0 -> 1.5 -> 1.2 -> 1.1; the search stops when no single
   adjustment helps (a local optimum — the structural reason MINIME trails
   the QP). *)
let search ~platform ~target =
  let x = Array.make Block.count 0.0 in
  (* seed: a balanced pattern with every behaviour represented *)
  Array.iteri (fun j _ -> x.(j) <- (if j <= 8 then 32.0 else 64.0)) x;
  let fix_wrapper x =
    let s = ref 0.0 in
    for j = 0 to 8 do
      s := !s +. x.(j)
    done;
    if x.(10) < !s then x.(10) <- !s
  in
  fix_wrapper x;
  let err x = ratio_error ~actual:(achieved_of platform x) ~reference:target in
  let current = ref (err x) in
  let steps = [ 2.0; 1.5; 1.2; 1.1 ] in
  List.iter
    (fun step ->
      let improved = ref true in
      let guard = ref 0 in
      while !improved && !guard < 200 do
        incr guard;
        improved := false;
        let best_j = ref (-1) and best_mult = ref 1.0 and best_err = ref !current in
        for j = 0 to Block.count - 1 do
          List.iter
            (fun mult ->
              let trial = Array.copy x in
              trial.(j) <- max 0.0 (Float.round (trial.(j) *. mult));
              if trial.(j) = x.(j) then trial.(j) <- trial.(j) +. (if mult > 1.0 then 1.0 else -1.0);
              if trial.(j) >= 0.0 then begin
                fix_wrapper trial;
                let e = err trial in
                if e < !best_err -. 1e-9 then begin
                  best_err := e;
                  best_j := j;
                  best_mult := mult
                end
              end)
            [ step; 1.0 /. step ]
        done;
        if !best_j >= 0 then begin
          x.(!best_j) <- max 0.0 (Float.round (x.(!best_j) *. !best_mult));
          fix_wrapper x;
          current := err x;
          improved := true
        end
      done)
    steps;
  (* scale the whole pattern to the target instruction count (duration
     calibration), which leaves the ratios unchanged *)
  let ach = achieved_of platform x in
  if ach.Counters.ins > 0.0 then begin
    let k = target.Counters.ins /. ach.Counters.ins in
    Array.iteri (fun j v -> x.(j) <- Float.round (v *. k)) x
  end;
  let achieved = achieved_of platform x in
  { x; achieved; ratio_error = ratio_error ~actual:achieved ~reference:target }
