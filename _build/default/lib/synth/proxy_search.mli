(** Computation-proxy search (Section 2.4).

    Given the six-metric target [t] of a computation event and the
    per-platform block matrix [B], find repetition counts [x >= 0]
    minimizing the relative-error objective

    {v sum_i (1/t_i^2) (b_i . x - t_i)^2 v}

    subject to the loop-overhead constraint [x11 >= x1 + ... + x9].

    The constraint is eliminated by the substitution
    [x11 = s + x1 + ... + x9, s >= 0] — under which the problem becomes a
    plain non-negative least squares in [(x1..x9, x10, s)], solved by
    Lawson–Hanson ({!Siesta_numerics.Nnls}).  The rounded integer solution
    is returned, with the constraint re-enforced after rounding. *)

type solution = {
  x : float array;  (** 11 non-negative integers (stored as floats) *)
  predicted : Siesta_perf.Counters.t;  (** B x on the search platform *)
  objective : float;  (** weighted residual of the continuous solution *)
  error : float;
      (** mean relative error of the rounded solution against the target,
          over the target's non-zero metrics *)
}

val search :
  ?loop_constraint:bool ->
  platform:Siesta_platform.Spec.t ->
  Siesta_perf.Counters.t ->
  solution
(** [loop_constraint] (default true) applies the x11 >= x1+...+x9
    loop-overhead constraint; disabling it (ablation) may return
    combinations that no emitted C code can realize.
    @raise Invalid_argument if the target is all-zero. *)

val predict :
  platform:Siesta_platform.Spec.t -> x:float array -> Siesta_perf.Counters.t
(** Metrics of a combination on a (possibly different) platform — this is
    what makes the proxy's computation time move when the platform
    changes. *)
