(* A min-heap would be asymptotically ideal; in practice the number of live
   handles is tiny, so a sorted free list below a high-water mark keeps the
   code simple and allocation-free on the hot path. *)
type t = { mutable free : int list; (* sorted ascending, all < high *) mutable high : int }

let create () = { free = []; high = 0 }

let acquire t =
  match t.free with
  | n :: rest ->
      t.free <- rest;
      n
  | [] ->
      let n = t.high in
      t.high <- n + 1;
      n

let release t n =
  if n < 0 || n >= t.high || List.mem n t.free then
    invalid_arg (Printf.sprintf "Pools.release: %d is not acquired" n);
  let rec insert = function
    | [] -> [ n ]
    | x :: rest as l -> if n < x then n :: l else x :: insert rest
  in
  t.free <- insert t.free

let live t = t.high - List.length t.free
