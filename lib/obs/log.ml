type level = Debug | Info | Warn | Off

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "off" | "none" | "quiet" -> Some Off
  | _ -> None

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Off -> "off"

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Off -> 3

let initial_level =
  match Sys.getenv_opt "SIESTA_LOG" with
  | Some s -> (
      match level_of_string s with
      | Some l -> l
      | None ->
          Printf.eprintf "siesta: ignoring invalid SIESTA_LOG=%S (debug|info|warn|off)\n%!" s;
          Warn)
  | None -> Warn

(* The current level is read on every call site; a plain [ref] read would
   be a data race under the domain pool, so it lives in an [Atomic] (an
   immediate, so reads stay branch-cheap). *)
let current = Atomic.make initial_level

let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = severity l >= severity (Atomic.get current) && Atomic.get current <> Off

(* Sink: stderr by default; [set_sink_file] swaps in an out_channel.  All
   writes (and sink swaps) happen under one mutex so concurrent domains
   never interleave half-lines. *)
let lock = Mutex.create ()
let sink : out_channel option ref = ref None (* None = stderr *)
let owned : out_channel option ref = ref None (* channel we must close *)

let close_owned () =
  match !owned with
  | Some oc ->
      (try
         Stdlib.flush oc;
         close_out oc
       with Sys_error _ -> ());
      owned := None
  | None -> ()

let () = at_exit (fun () -> Mutex.protect lock close_owned)

let set_sink_file path =
  Mutex.protect lock (fun () ->
      close_owned ();
      let oc = open_out path in
      sink := Some oc;
      owned := Some oc)

let set_sink_stderr () =
  Mutex.protect lock (fun () ->
      close_owned ();
      sink := None)

let flush () =
  Mutex.protect lock (fun () ->
      match !sink with Some oc -> Stdlib.flush oc | None -> Stdlib.flush stderr)

(* A value with spaces, quotes or '=' is quoted so lines stay
   machine-splittable on whitespace. *)
let quote_if_needed v =
  let needs =
    v = ""
    || String.exists (fun c -> c = ' ' || c = '=' || c = '"' || c = '\n' || c = '\t') v
  in
  if needs then Printf.sprintf "%S" v else v

let msg l thunk =
  if enabled l then begin
    let event, kvs = thunk () in
    let b = Buffer.create 96 in
    (* run=<id-prefix> joins the line to the process's other telemetry
       (span files, metrics snapshots, ledger records). *)
    Buffer.add_string b
      (Printf.sprintf "[%.6f] [%s] %s run=%s" (Clock.now_s ()) (level_name l) event
         (Run_id.short ()));
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b (quote_if_needed v))
      kvs;
    Buffer.add_char b '\n';
    let line = Buffer.contents b in
    Mutex.protect lock (fun () ->
        match !sink with
        | Some oc -> output_string oc line
        | None ->
            output_string stderr line;
            Stdlib.flush stderr)
  end

let debug thunk = msg Debug thunk
let info thunk = msg Info thunk
let warn thunk = msg Warn thunk
