lib/mpi/op.ml:
