lib/mpi/call.ml: Array Datatype List Op Printf String
