lib/grammar/grammar.ml: Array Buffer Format Hashtbl List Printf String
