lib/platform/network.mli:
