(** Static communication-correctness checker over merged grammars.

    The merged program is a compact symbolic description of every rank's
    communication, so three classes of defect can be verified without
    replaying a single event — the checker expands {!Siesta_merge.Merged}
    rules per rank and reasons about the resulting sequences:

    - {b matching completeness}: every point-to-point send must have a
      structurally reachable matching recv on its destination (and vice
      versa).  Sends and recvs are grouped into [(src, tag)] classes per
      (communicator, destination) pair — a send can only match a recv
      posted on the same communicator, so traffic that balances globally
      but not within a sub-communicator is flagged — and matched by an
      integral max-flow, so wildcard ([MPI_ANY_SOURCE]/[MPI_ANY_TAG])
      recv classes are credited optimally rather than greedily.  This is
      the static analogue of {!Siesta_mpi.Engine}'s dynamic
      [unreceived_messages] counter.
    - {b rendezvous deadlock potential}: messages above the MPI
      profile's [eager_threshold_bytes] block their sender until the
      receiver reaches the matching recv.  The checker FIFO-matches
      sends to recvs per [(comm, src, dst, tag)] (MPI's non-overtaking
      rule),
      builds the waits-for graph among blocking occurrences
      (rendezvous-sized blocking sends and blocking recvs, chained in
      program order per rank), and reports any cycle — a schedule on
      which every rank in the cycle blocks forever.
    - {b collective consistency}: all ranks participating in a
      communicator must issue the same sequence of collective
      [(kind, root, op)] signatures, and rooted world collectives must
      name a root inside [\[0, nranks)].

    What the checker can {e not} prove is anything depending on values or
    timing — message {e contents}, compute fidelity, or which of several
    legal wildcard matchings a real run takes; those still need replay
    (see [DESIGN.md] §14).  Verdicts mirror {!Divergence}: a typed
    verdict over structured reason strings, markdown/JSON renderings and
    a [verdict_rank] ordering for the regression radar. *)

type report = {
  k_nranks : int;
  k_impl : string;  (** MPI profile name the thresholds came from *)
  k_eager_threshold : int;
  k_sends : int;  (** point-to-point send occurrences *)
  k_recvs : int;
  k_wildcard_recvs : int;  (** recvs with [ANY_SOURCE] or [ANY_TAG] *)
  k_rdv_sends : int;  (** blocking sends above the eager threshold *)
  k_collectives : int;
  k_unmatched_sends : int;  (** sends no recv class can absorb *)
  k_unmatched_recvs : int;  (** recvs no send will ever satisfy *)
  k_deadlock_cycles : int;
  k_collective_mismatches : int;  (** sequence mismatches + bad roots *)
  k_reasons : string list;  (** human-readable violations, stable order *)
}

type verdict = Clean | Violated of string list

val check : impl:Siesta_platform.Mpi_impl.t -> Siesta_merge.Merged.t -> report
(** Run all three checks.  [impl] supplies the eager/rendezvous switch
    point; everything else comes from the merged grammar itself. *)

val verdict : report -> verdict

val verdict_name : verdict -> string
(** ["clean"] or ["violated"]. *)

val verdict_rank : string -> int
(** Severity order for the regression radar: clean < violated < unknown
    (mirrors {!Siesta_ledger.Regression}'s divergence-verdict rank). *)

val to_markdown : report -> string
val to_json : report -> string

val of_json : Siesta_obs.Json.t -> report
(** Inverse of {!to_json} ∘ {!Siesta_obs.Json.parse_exn}.
    @raise Failure on a document missing checker fields. *)

val publish_metrics : report -> unit
(** [check.*] gauges (clean flag plus per-check violation counts). *)

(** {1 Fault injection}

    Deliberate damage to a merged program, one seeded fault per checker
    dimension, for drilling the detector ([siesta check --perturb]). *)

type fault = [ `Mismatch | `Deadlock | `Collective ]

val fault_names : (string * fault) list
(** CLI spellings: ["mismatch"], ["deadlock"], ["collective"]. *)

val fault_of_string : string -> (fault, string) result
(** The [Error] carries a message naming the offending token. *)

val perturb : ?sites:int array -> fault -> Siesta_merge.Merged.t -> Siesta_merge.Merged.t
(** [`Mismatch] injects a send nobody receives on every rank;
    [`Deadlock] injects a ring of above-threshold blocking sends posted
    before their matching recvs (a self-loop at nranks=1);
    [`Collective] gives one rank an extra world collective the others
    never join (at nranks=1: an out-of-range root instead).  [sites]
    picks the injection position inside each main cluster's entry list
    ([sites.(i mod Array.length sites)] for cluster [i], clamped to the
    list length); omitted or empty, faults append at the end.  Every
    fault flips the verdict at every site — the qcheck placement
    property relies on it.  The result still satisfies
    {!Siesta_merge.Merged.validate}. *)
